"""The NASH ring protocol under power-of-k sampled information.

The full-information protocol (:mod:`repro.distributed.runtime`) has
every agent observe all ``n`` computers before each best reply — an
``O(m n)`` observation cost per sweep that dwarfs the ``O(m)`` token
hops.  This driver runs the same ring with
:class:`SampledUserAgent`\\ s, which poll only their current support
(free — their own jobs measure those queues) plus ``k`` seeded random
computers per update (:mod:`repro.core.sampled`), cutting the per-sweep
observation cost to ``O(m k)``.

Poll accounting is a first-class protocol quantity: each update's probe
count rides the token next to the norm (``Message.polls``), so the
initiator reads the ring-wide poll cost of every circulation off the
returning token and emits it as one ``protocol.sample`` event — the
trace alone reconstructs the full message economics
(``messages_sent = token/terminate hops + polls``).  With ``k >= n``
every update honestly pays ``n`` polls: that run *is* the
full-information baseline the EXT11 message-reduction figures divide by.

Determinism and parity: agent ``j``'s ``l``-th update draws
``sample_indices(seed, l, j, n, k)`` — the same generator the sequential
:class:`~repro.core.nash.NashSolver` uses for user ``j`` in sweep ``l``
— so the ring computes the sequential sampled solver's iterates up to
the usual board-summation round-off, and exactly the base protocol's
when ``k >= n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
)
from repro.core.sampled import (
    SampleCertificate,
    reply_set,
    sample_indices,
    widen_reply_set,
)
from repro.core.strategy import StrategyProfile
from repro.distributed.messages import Message
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent
from repro.distributed.runtime import seed_initial_state
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "SampledProtocolOutcome",
    "SampledUserAgent",
    "run_sampled_nash_protocol",
]


class SampledUserAgent(UserAgent):
    """A ring agent that best-responds over ``support ∪ k-sample``.

    The update observes the board only at the reply set — an O(k) poll
    via :meth:`~repro.distributed.node.ComputerBoard.available_rates_at`
    — and falls back to the deterministic widening scan (extra polls,
    honestly counted) when the sampled capacity cannot carry the job
    rate, e.g. on a cold start from the all-zero profile.
    """

    def __init__(
        self,
        rank: int,
        job_rate: float,
        board: ComputerBoard,
        bus: MessageBus,
        *,
        tolerance: float,
        max_sweeps: int,
        sample_k: int,
        seed: int = 0,
        tracer: Tracer | None = None,
    ):
        super().__init__(
            rank,
            job_rate,
            board,
            bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            tracer=tracer,
        )
        if sample_k < 1:
            raise ValueError("sample_k must be at least 1")
        self.sample_k = int(sample_k)
        self._seed = int(seed)
        #: Completed updates — the agent's local sweep counter, which by
        #: ring construction equals the sequential solver's sweep index
        #: for this user, so both draw identical samples.
        self._updates = 0
        #: Total availability probes this agent has spent.
        self.polls = 0

    def _update_delta(self) -> float:
        board = self._board
        n = board.service_rates.size
        sweep = self._updates
        indices = sample_indices(self._seed, sweep, self.rank, n, self.sample_k)
        chosen = reply_set(board.flows[self.rank], indices)
        polls = int(indices.size)
        observed = board.available_rates_at(self.rank, chosen)
        if self.job_rate >= float(np.clip(observed, 0.0, None).sum()):
            # The sampled capacity cannot carry the demand: widen the
            # reply set deterministically, paying for every newly
            # examined computer.
            available = board.available_rates(self.rank)
            chosen, extra = widen_reply_set(
                chosen,
                available,
                self.job_rate,
                seed=self._seed,
                sweep=sweep,
                index=self.rank,
            )
            polls += extra
            observed = available[chosen]
        reply = optimal_fractions(observed, self.job_rate)
        flows = np.zeros(n)
        flows[chosen] = reply.fractions * self.job_rate
        board.publish(self.rank, flows)
        self._updates += 1
        self.polls += polls
        self._last_update_polls = polls
        if self._tracer.enabled:
            self._tracer.count("protocol.messages.probe", polls)
        delta = abs(reply.expected_response_time - self._previous_time)
        self._previous_time = reply.expected_response_time
        return delta

    def _record_circulation(self, message: Message) -> None:
        # The returning token carries the circulation's ring-wide poll
        # cost next to its norm; one event per sweep reconstructs the
        # whole poll economics from the trace (see protocol_summary).
        if self._tracer.enabled:
            self._tracer.emit(
                "protocol.sample",
                index=len(self.norm_history) - 1,
                sweep=message.sweep,
                norm=message.norm,
                k=self.sample_k,
                polls=message.polls,
            )


@dataclass(frozen=True)
class SampledProtocolOutcome:
    """A sampled protocol run: equilibrium result plus message economics.

    ``messages_sent`` is the honest total cost — bus messages (token
    hops + termination) **plus** availability polls, since under partial
    information every probe is a message to a computer.  The
    full-information baseline is the same driver at ``k = n``, where
    every update pays ``n`` polls.
    """

    result: NashResult
    messages_sent: int
    bus_messages: int
    polls: int
    sample_k: int
    epsilon: float
    transcript: tuple[Message, ...]


def run_sampled_nash_protocol(
    system: DistributedSystem,
    *,
    sample_k: int,
    seed: int = 0,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    record_transcript: bool = True,
    tracer: Tracer | None = None,
) -> SampledProtocolOutcome:
    """Execute the ring protocol under power-of-k sampled information.

    Mirrors :func:`repro.distributed.runtime.run_nash_protocol` —
    ``protocol.start`` / ``protocol.deliver`` (+ per-kind counters) /
    ``protocol.sweep`` / ``protocol.done`` — and adds the sampled
    accounting: a ``protocol.messages.probe`` counter per update and one
    ``protocol.sample`` event per completed circulation carrying that
    sweep's ring-wide poll cost.  The result's
    :class:`~repro.core.sampled.SampleCertificate` reports the **true**
    global epsilon of the final profile against exact full-information
    best responses.
    """
    if sample_k < 1:
        raise ValueError("sample_k must be at least 1")
    tracer = tracer if tracer is not None else current_tracer()
    trace = tracer.enabled
    m, n = system.n_users, system.n_computers
    board = ComputerBoard(system.service_rates, m)
    bus = MessageBus(m, record_transcript=record_transcript)
    agents = [
        SampledUserAgent(
            rank=j,
            job_rate=float(system.arrival_rates[j]),
            board=board,
            bus=bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            sample_k=sample_k,
            seed=seed,
            tracer=tracer,
        )
        for j in range(m)
    ]

    seed_initial_state(system, board, agents, init)
    if trace:
        tracer.emit(
            "protocol.start",
            driver="sampled",
            users=m,
            computers=n,
            k=min(sample_k, n),
            tolerance=tolerance,
            max_sweeps=max_sweeps,
        )

    agents[0].start()
    bus_messages = 0
    while True:
        pending = bus.pending_ranks()
        if not pending:
            break
        for rank in pending:
            message = bus.recv(rank)
            if trace:
                kind = message.kind.name.lower()
                tracer.emit(
                    "protocol.deliver",
                    kind=kind,
                    sender=message.sender,
                    receiver=message.receiver,
                    sweep=message.sweep,
                    norm=message.norm,
                )
                tracer.count(f"protocol.messages.{kind}")
            agents[rank].handle(message)
            bus_messages += 1

    if not all(agent.finished for agent in agents):  # pragma: no cover
        raise RuntimeError("protocol stalled before termination circulated")

    polls = sum(agent.polls for agent in agents)
    fractions = board.flows / system.arrival_rates[:, None]
    profile = StrategyProfile(fractions)
    norms = np.asarray(agents[0].norm_history, dtype=float)
    converged = bool(norms.size and norms[-1] <= tolerance)
    try:
        epsilon = float(best_response_regrets(system, profile).epsilon)
        user_times = system.user_response_times(profile.fractions)
    except ValueError:
        epsilon = float("inf")
        user_times = np.full(m, np.inf)
        converged = False
    certificate = SampleCertificate(
        k=min(sample_k, n),
        n_computers=n,
        sweeps=int(norms.size),
        polls=polls,
        sampled_norm=float(norms[-1]) if norms.size else 0.0,
        epsilon=epsilon,
    )
    result = NashResult(
        profile=profile,
        converged=converged,
        iterations=int(norms.size),
        norm_history=norms,
        user_times=user_times,
        sample=certificate,
    )
    if trace:
        tracer.emit(
            "protocol.done",
            driver="sampled",
            converged=converged,
            sweeps=int(norms.size),
            messages_sent=bus_messages + polls,
            retransmissions=0,
        )
    return SampledProtocolOutcome(
        result=result,
        messages_sent=bus_messages + polls,
        bus_messages=bus_messages,
        polls=polls,
        sample_k=min(sample_k, n),
        epsilon=epsilon,
        transcript=bus.transcript,
    )
