"""Driver for the distributed NASH protocol.

Builds the agents, the shared computer board and the message bus, seeds
the chosen initialization, and pumps messages until the TERMINATE message
has circled the ring.  The result is packaged as the same
:class:`~repro.core.nash.NashResult` the sequential driver produces — and
because the token ring serializes the updates in user order, the two
drivers compute the same iterates, sweep counts and norms up to
floating-point round-off (the board and the model sum the flows in
different orders), a cross-check the test suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
    initial_profile,
)
from repro.core.strategy import StrategyProfile
from repro.distributed.messages import Message
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent

__all__ = ["ProtocolOutcome", "run_nash_protocol"]


@dataclass(frozen=True)
class ProtocolOutcome:
    """A protocol run: the Nash result plus transport-level diagnostics.

    Attributes
    ----------
    result:
        The equilibrium outcome, identical in shape to the sequential
        solver's.
    messages_sent:
        Total messages delivered on the bus (token hops + termination).
    transcript:
        Full ordered message log (for protocol-level assertions).
    retransmissions:
        Messages re-sent by the stall-recovery path (always zero on the
        reliable bus; the fault-tolerant drivers report their retries
        here so the overhead accounting is one subtraction away from
        ``messages_sent``).
    """

    result: NashResult
    messages_sent: int
    transcript: tuple[Message, ...]
    retransmissions: int = 0


def run_nash_protocol(
    system: DistributedSystem,
    *,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    record_transcript: bool = True,
) -> ProtocolOutcome:
    """Execute the NASH distributed algorithm over the message bus.

    Parameters mirror :func:`repro.core.nash.compute_nash_equilibrium`.
    """
    m = system.n_users
    board = ComputerBoard(system.service_rates, m)
    bus = MessageBus(m, record_transcript=record_transcript)
    agents = [
        UserAgent(
            rank=j,
            job_rate=float(system.arrival_rates[j]),
            board=board,
            bus=bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
        )
        for j in range(m)
    ]

    # Seed the initialization: publish initial flows and the matching
    # D_j^{(0)} baselines, exactly as the sequential solver does.
    profile0 = initial_profile(system, init)
    feasible_start = bool(np.allclose(profile0.fractions.sum(axis=1), 1.0))
    if feasible_start:
        times0 = system.user_response_times(profile0.fractions)
        for j, agent in enumerate(agents):
            board.publish(j, profile0.fractions[j] * system.arrival_rates[j])
            agent._previous_time = float(times0[j])

    agents[0].start()
    messages = 0
    # The token ring is strictly sequential, so draining pending ranks in
    # order is a faithful (and deterministic) schedule.
    while True:
        pending = bus.pending_ranks()
        if not pending:
            break
        for rank in pending:
            agents[rank].handle(bus.recv(rank))
            messages += 1

    if not all(agent.finished for agent in agents):  # pragma: no cover
        raise RuntimeError("protocol stalled before termination circulated")

    fractions = board.flows / system.arrival_rates[:, None]
    profile = StrategyProfile(fractions)
    norms = np.asarray(agents[0].norm_history, dtype=float)
    converged = bool(norms.size and norms[-1] <= tolerance)
    result = NashResult(
        profile=profile,
        converged=converged,
        iterations=int(norms.size),
        norm_history=norms,
        user_times=system.user_response_times(profile.fractions),
    )
    return ProtocolOutcome(
        result=result,
        messages_sent=messages,
        transcript=bus.transcript,
    )
