"""Driver for the distributed NASH protocol.

Builds the agents, the shared computer board and the message bus, seeds
the chosen initialization, and pumps messages until the TERMINATE message
has circled the ring.  The result is packaged as the same
:class:`~repro.core.nash.NashResult` the sequential driver produces — and
because the token ring serializes the updates in user order, the two
drivers compute the same iterates, sweep counts and norms up to
floating-point round-off (the board and the model sum the flows in
different orders), a cross-check the test suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
    initial_profile,
)
from repro.core.strategy import StrategyProfile
from repro.distributed.messages import Message
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent
from repro.telemetry.trace import Tracer, current_tracer

__all__ = ["ProtocolOutcome", "run_nash_protocol", "seed_initial_state"]


@dataclass(frozen=True)
class ProtocolOutcome:
    """A protocol run: the Nash result plus transport-level diagnostics.

    Attributes
    ----------
    result:
        The equilibrium outcome, identical in shape to the sequential
        solver's.
    messages_sent:
        Total messages delivered on the bus (token hops + termination).
    transcript:
        Full ordered message log (for protocol-level assertions).
    retransmissions:
        Messages re-sent by the stall-recovery path (always zero on the
        reliable bus; the fault-tolerant drivers report their retries
        here so the overhead accounting is one subtraction away from
        ``messages_sent``).
    """

    result: NashResult
    messages_sent: int
    transcript: tuple[Message, ...]
    retransmissions: int = 0


def seed_initial_state(
    system: DistributedSystem,
    board: ComputerBoard,
    agents: list[UserAgent],
    init: Initialization | StrategyProfile,
) -> None:
    """Publish the initialization and seed the ``D_j^{(0)}`` baselines.

    Mirrors the sequential solver exactly (see ``NashSolver.solve``): the
    profile's flows are *always* published — NASH_0's zeros are a no-op,
    but a partial or overloaded starting profile is real state the first
    sweep must react to — while the baselines are the profile's expected
    response times only when the profile both conserves flow and keeps
    every computer stable; otherwise they stay zero, the NASH_0
    convention.  (The pre-fix driver skipped the publish entirely and
    crashed on a conserving-but-overloaded start; the regression tests in
    ``tests/distributed/test_runtime.py`` pin the parity.)
    """
    profile0 = initial_profile(system, init)
    flows0 = profile0.fractions * system.arrival_rates[:, None]
    for j in range(len(agents)):
        board.publish(j, flows0[j])
    times0 = np.zeros(len(agents))
    if bool(np.allclose(profile0.fractions.sum(axis=1), 1.0)):
        try:
            times0 = system.user_response_times(profile0.fractions)
        except ValueError:
            # Conserving but unstable (e.g. a uniform split overloading a
            # slow computer): no finite expected times — NASH_0 baselines.
            pass
    for j, agent in enumerate(agents):
        agent._previous_time = float(times0[j])


def run_nash_protocol(
    system: DistributedSystem,
    *,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    record_transcript: bool = True,
    tracer: Tracer | None = None,
) -> ProtocolOutcome:
    """Execute the NASH distributed algorithm over the message bus.

    Parameters mirror :func:`repro.core.nash.compute_nash_equilibrium`.
    ``tracer`` (default: the ambient tracer) records one
    ``protocol.deliver`` event per bus delivery, per-kind message
    counters, the initiator's ``protocol.sweep`` circulation record and a
    ``protocol.done`` summary — enough to reconstruct the convergence
    history and the full message accounting from the trace alone.
    """
    tracer = tracer if tracer is not None else current_tracer()
    trace = tracer.enabled
    m = system.n_users
    board = ComputerBoard(system.service_rates, m)
    bus = MessageBus(m, record_transcript=record_transcript)
    agents = [
        UserAgent(
            rank=j,
            job_rate=float(system.arrival_rates[j]),
            board=board,
            bus=bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            tracer=tracer,
        )
        for j in range(m)
    ]

    seed_initial_state(system, board, agents, init)
    if trace:
        tracer.emit(
            "protocol.start",
            driver="reliable",
            users=m,
            computers=system.n_computers,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
        )

    agents[0].start()
    messages = 0
    # The token ring is strictly sequential, so draining pending ranks in
    # order is a faithful (and deterministic) schedule.
    while True:
        pending = bus.pending_ranks()
        if not pending:
            break
        for rank in pending:
            message = bus.recv(rank)
            if trace:
                kind = message.kind.name.lower()
                tracer.emit(
                    "protocol.deliver",
                    kind=kind,
                    sender=message.sender,
                    receiver=message.receiver,
                    sweep=message.sweep,
                    norm=message.norm,
                )
                tracer.count(f"protocol.messages.{kind}")
            agents[rank].handle(message)
            messages += 1

    if not all(agent.finished for agent in agents):  # pragma: no cover
        raise RuntimeError("protocol stalled before termination circulated")

    fractions = board.flows / system.arrival_rates[:, None]
    profile = StrategyProfile(fractions)
    norms = np.asarray(agents[0].norm_history, dtype=float)
    converged = bool(norms.size and norms[-1] <= tolerance)
    result = NashResult(
        profile=profile,
        converged=converged,
        iterations=int(norms.size),
        norm_history=norms,
        user_times=system.user_response_times(profile.fractions),
    )
    if trace:
        tracer.emit(
            "protocol.done",
            driver="reliable",
            converged=converged,
            sweeps=int(norms.size),
            messages_sent=messages,
            retransmissions=0,
        )
    return ProtocolOutcome(
        result=result,
        messages_sent=messages,
        transcript=bus.transcript,
    )
