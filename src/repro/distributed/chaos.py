"""Crash-fault injection and the self-healing NASH protocol driver.

:mod:`repro.distributed.faults` makes the token ring survive a lossy
*network*; this module makes it survive a lossy *system*: user agents
that crash (losing volatile state and mailbox) and later restart, and
computers that go offline (permanently or temporarily) mid-run.

The pieces, bottom up:

* :class:`FaultSchedule` — scripted or seeded ``(step, kind, target)``
  fault events, validated for crash/restart alternation and replayable
  bit-for-bit;
* :class:`CrashyMessageBus` — the lossy bus plus crash semantics: a dead
  rank's mailbox is wiped and everything sent to it is dropped;
* :class:`ResilientAgent` — a deduping agent whose initiator refuses to
  accept a convergence norm measured partly before a topology change;
* :func:`run_nash_protocol_resilient` — the supervisor: heartbeat-based
  failure detection, checkpoint/restore of crashed agents, capped
  exponential retransmission backoff, and graceful degradation onto the
  surviving computer set (or a typed
  :class:`~repro.core.degradation.CapacityExhausted` when the survivors
  cannot carry the load).

The degraded-equilibrium guarantee: a run that loses computers converges
to exactly the Nash equilibrium of the game restricted to the surviving
computers — the fixed point does not remember the failure history, only
the final topology.  Crashes happen *between* supervisor steps (an
agent's message handling is atomic), and the supervisor's outbox log
survives crashes — the classic sender-based message-logging assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Iterable, Sequence

import numpy as np

from repro.core.degradation import project_profile, surviving_subsystem
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
)
from repro.core.strategy import StrategyProfile
from repro.distributed.checkpoint import CheckpointStore
from repro.distributed.failure_detector import (
    ExponentialBackoff,
    HeartbeatFailureDetector,
)
from repro.distributed.faults import DedupingAgent, LossyMessageBus
from repro.distributed.messages import Message, MessageKind
from repro.distributed.node import ComputerBoard
from repro.distributed.runtime import ProtocolOutcome, seed_initial_state
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "CrashyMessageBus",
    "ResilientAgent",
    "ResilientOutcome",
    "run_nash_protocol_resilient",
]


class FaultKind(Enum):
    """Crash-fault vocabulary of the chaos layer."""

    #: A user agent process dies: volatile state and mailbox are lost.
    AGENT_CRASH = auto()
    #: A crashed agent comes back and is restored from its checkpoint.
    AGENT_RESTART = auto()
    #: A computer goes offline: it serves no further load.
    COMPUTER_DOWN = auto()
    #: An offline computer rejoins with its full service rate.
    COMPUTER_UP = auto()


_AGENT_KINDS = (FaultKind.AGENT_CRASH, FaultKind.AGENT_RESTART)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault: at supervisor step ``step``, do ``kind`` to
    ``target`` (an agent rank or a computer index)."""

    step: int
    kind: FaultKind
    target: int

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError("fault steps are 1-based")
        if self.target < 0:
            raise ValueError("fault target must be nonnegative")


class FaultSchedule:
    """A validated, replayable sequence of fault events.

    Events are applied in ``(step, insertion order)``; the constructor
    rejects schedules that crash an already-crashed agent, restart a
    running one, or toggle a computer into the state it is already in.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()):
        ordered = sorted(events, key=lambda event: event.step)
        agent_down: set[int] = set()
        computer_down: set[int] = set()
        for event in ordered:
            if event.kind is FaultKind.AGENT_CRASH:
                if event.target in agent_down:
                    raise ValueError(
                        f"agent {event.target} crashed while already down"
                    )
                agent_down.add(event.target)
            elif event.kind is FaultKind.AGENT_RESTART:
                if event.target not in agent_down:
                    raise ValueError(
                        f"agent {event.target} restarted while running"
                    )
                agent_down.discard(event.target)
            elif event.kind is FaultKind.COMPUTER_DOWN:
                if event.target in computer_down:
                    raise ValueError(
                        f"computer {event.target} failed while already down"
                    )
                computer_down.add(event.target)
            elif event.kind is FaultKind.COMPUTER_UP:
                if event.target not in computer_down:
                    raise ValueError(
                        f"computer {event.target} restored while online"
                    )
                computer_down.discard(event.target)
        self._events = tuple(ordered)
        self._by_step: dict[int, tuple[FaultEvent, ...]] = {}
        for event in ordered:
            self._by_step.setdefault(event.step, ())
            self._by_step[event.step] += (event,)

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        return self._events

    @property
    def n_events(self) -> int:
        return len(self._events)

    @property
    def max_step(self) -> int:
        return self._events[-1].step if self._events else 0

    def events_at(self, step: int) -> tuple[FaultEvent, ...]:
        return self._by_step.get(step, ())

    def pending_restart(self, rank: int, step: int) -> bool:
        """Is an AGENT_RESTART for ``rank`` still scheduled after ``step``?"""
        return any(
            event.kind is FaultKind.AGENT_RESTART
            and event.target == rank
            and event.step > step
            for event in self._events
        )

    @classmethod
    def random(
        cls,
        *,
        n_agents: int,
        seed: int,
        horizon: int,
        agent_crashes: int = 1,
        computer_failures: int = 0,
        computer_targets: Sequence[int] = (),
        outage_steps: int = 0,
        min_downtime: int = 6,
    ) -> "FaultSchedule":
        """A seeded chaos schedule for a run expected to span ``horizon``
        supervisor steps.

        Crashes hit distinct agents in the first half of the horizon and
        restart after at least ``min_downtime`` steps.  Computer failures
        hit distinct members of ``computer_targets`` (the caller decides
        which computers are *safe* to lose); they stay down permanently
        unless ``outage_steps`` > 0, in which case each comes back that
        many steps later.
        """
        if horizon < 4 * min_downtime:
            raise ValueError("horizon too short for a meaningful schedule")
        if agent_crashes > n_agents:
            raise ValueError("cannot crash more agents than exist")
        if computer_failures > len(tuple(computer_targets)):
            raise ValueError(
                "computer_failures exceeds the allowed target list"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        ranks = rng.choice(n_agents, size=agent_crashes, replace=False)
        for rank in ranks:
            crash = int(rng.integers(horizon // 4, horizon // 2))
            downtime = int(rng.integers(min_downtime, 2 * min_downtime + 1))
            events.append(FaultEvent(crash, FaultKind.AGENT_CRASH, int(rank)))
            events.append(
                FaultEvent(crash + downtime, FaultKind.AGENT_RESTART, int(rank))
            )
        if computer_failures:
            chosen = rng.choice(
                np.asarray(tuple(computer_targets), dtype=int),
                size=computer_failures,
                replace=False,
            )
            for computer in chosen:
                down = int(rng.integers(horizon // 4, horizon // 2))
                events.append(
                    FaultEvent(down, FaultKind.COMPUTER_DOWN, int(computer))
                )
                if outage_steps > 0:
                    events.append(
                        FaultEvent(
                            down + outage_steps,
                            FaultKind.COMPUTER_UP,
                            int(computer),
                        )
                    )
        return cls(events)


class CrashyMessageBus(LossyMessageBus):
    """The lossy bus plus crash semantics for dead ranks.

    Messages addressed to a dead rank vanish (counted in
    ``lost_to_crash``); marking a rank dead wipes its mailbox — a crashed
    process loses whatever was in flight to it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._dead: set[int] = set()
        self.lost_to_crash = 0

    def mark_dead(self, rank: int) -> int:
        """Declare ``rank`` dead; returns the number of wiped messages."""
        self._dead.add(rank)
        return self.clear_mailbox(rank)

    def mark_alive(self, rank: int) -> None:
        self._dead.discard(rank)

    def is_dead(self, rank: int) -> bool:
        return rank in self._dead

    def _deliver(self, message: Message) -> None:
        if message.receiver in self._dead:
            self.lost_to_crash += 1
            return
        super()._deliver(message)


class ResilientAgent(DedupingAgent):
    """A deduping agent hardened for topology changes.

    The initiator refuses to terminate on a circulation that began before
    the latest topology change (``min_termination_sweep``): the norm it
    carries mixes pre- and post-failure deltas and proves nothing about
    the degraded game.  The supervisor may also re-inject a token
    (:meth:`rekick`) after cancelling a stale TERMINATE wave.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Earliest sweep whose circulation ran entirely after the last
        #: topology change — termination on earlier sweeps is vetoed.
        self.min_termination_sweep = 0

    def _should_terminate(self, message: Message) -> bool:
        if message.sweep >= self._max_sweeps:
            return True  # budget exhausted: stop even if vetoed
        return (
            message.norm <= self._tolerance
            and message.sweep >= self.min_termination_sweep
        )

    def rekick(self, sweep: int) -> None:
        """Initiator only: restart a dead ring with a fresh token."""
        if self.rank != 0:
            raise RuntimeError("only rank 0 can re-kick the ring")
        norm = self._update()
        self._bus.send(
            Message(
                kind=MessageKind.TOKEN,
                sender=self.rank,
                receiver=self._next_rank,
                sweep=sweep,
                norm=norm,
            )
        )


@dataclass(frozen=True)
class ResilientOutcome(ProtocolOutcome):
    """A resilient protocol run: the Nash result plus the recovery story.

    Extends :class:`~repro.distributed.runtime.ProtocolOutcome` with the
    supervisor's fault/recovery accounting.
    """

    #: Agent crash / restart / checkpoint-restore counts.
    crashes: int = 0
    restarts: int = 0
    checkpoint_restores: int = 0
    checkpoint_captures: int = 0
    #: Failure-detector suspicion events (one per detected death).
    suspicions: int = 0
    #: Messages dropped because their receiver was dead.
    messages_lost_to_crash: int = 0
    #: Computers that failed / rejoined during the run, in event order.
    computers_failed: tuple[int, ...] = ()
    computers_restored: tuple[int, ...] = ()
    #: Final online mask (one entry per computer).
    online_mask: tuple[bool, ...] = ()
    #: True when the run ended on a strict subset of the computers.
    degraded: bool = False
    #: Times the supervisor cancelled a stale TERMINATE wave.
    ring_reopens: int = 0
    #: Supervisor steps executed, and schedule events applied/ignored
    #: (events scheduled after termination are never applied).
    steps: int = 0
    events_applied: int = 0
    events_unapplied: int = 0

    def surviving_fractions(self) -> np.ndarray:
        """The final profile restricted to the online computers — the
        matrix to compare against a from-scratch degraded solve."""
        mask = np.asarray(self.online_mask, dtype=bool)
        return self.result.profile.fractions[:, mask]


def _refresh_baselines(system, board, agents) -> None:
    """Reset every agent's ``D_j`` baseline to the projected-profile times.

    Offline computers carry zero flow after projection, so the full-width
    formula is exact for the degraded system.  If the projection
    transiently overloads a live computer the refresh is skipped — the
    next best replies repair the profile and the norm simply spikes.
    """
    fractions = board.flows / np.asarray(
        [agent.job_rate for agent in agents]
    )[:, None]
    try:
        times = system.user_response_times(fractions)
    except ValueError:
        return
    for agent, time in zip(agents, times):
        agent._previous_time = float(time)


def run_nash_protocol_resilient(
    system: DistributedSystem,
    schedule: FaultSchedule | None = None,
    *,
    drop: float = 0.0,
    duplicate: float = 0.0,
    fault_seed: int = 0,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    checkpoint_interval: int = 8,
    suspect_after: int = 3,
    backoff_base: int = 1,
    backoff_cap: int = 16,
    max_steps: int | None = None,
    tracer: Tracer | None = None,
) -> ResilientOutcome:
    """The NASH ring protocol under crash faults and computer failures.

    Runs the token-ring protocol of the paper over a
    :class:`CrashyMessageBus`, supervised: live agents heartbeat every
    step, a :class:`~repro.distributed.failure_detector.\
HeartbeatFailureDetector` suspects silent ones, stalls are healed by
    retransmitting the supervisor's outbox log with capped exponential
    backoff, crashed agents are restored from periodic checkpoints when
    they restart, and computer failures degrade the game onto the
    surviving machines (strategies re-projected, stability re-checked).

    Raises
    ------
    CapacityExhausted
        When a computer failure leaves ``Phi >= sum of surviving mu_i``.
    RuntimeError
        When the ring cannot recover (an agent crashed with no scheduled
        restart while the protocol still needs it) or ``max_steps`` is
        exceeded.
    """
    schedule = schedule if schedule is not None else FaultSchedule(())
    tracer = tracer if tracer is not None else current_tracer()
    trace = tracer.enabled
    m = system.n_users
    board = ComputerBoard(system.service_rates, m)
    bus = CrashyMessageBus(m, drop=drop, duplicate=duplicate, seed=fault_seed)
    agents = [
        ResilientAgent(
            rank=j,
            job_rate=float(system.arrival_rates[j]),
            board=board,
            bus=bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            tracer=tracer,
        )
        for j in range(m)
    ]

    seed_initial_state(system, board, agents, init)
    if trace:
        tracer.emit(
            "protocol.start",
            driver="resilient",
            users=m,
            computers=system.n_computers,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            drop=drop,
            duplicate=duplicate,
            checkpoint_interval=checkpoint_interval,
            suspect_after=suspect_after,
            scheduled_events=schedule.n_events,
        )

    # Supervisor-side write-ahead outbox log (sender-based message
    # logging): survives agent crashes, feeds retransmission.
    last_sent: dict[int, Message] = {}
    bus.add_outbox_hook(lambda message: last_sent.__setitem__(message.sender, message))

    store = CheckpointStore()
    detector = HeartbeatFailureDetector(suspect_after)
    backoff = ExponentialBackoff(backoff_base, backoff_cap)
    generation = 0
    for j, agent in enumerate(agents):
        store.capture(agent, board, step=0, generation=generation)
        detector.beat(j, 0)
        if trace:
            tracer.emit("protocol.checkpoint", step=0, rank=j)
            tracer.count("protocol.checkpoint_captures")

    alive = [True] * m
    finished_at_crash = [False] * m

    def finished_view(rank: int) -> bool:
        return agents[rank].finished if alive[rank] else finished_at_crash[rank]

    crashes = restarts = 0
    computers_failed: list[int] = []
    computers_restored: list[int] = []
    ring_reopens = 0
    rekick_pending = False
    events_applied = 0
    messages = retransmissions = 0
    stall = 0
    step = 0
    known_suspects: set[int] = set()
    if max_steps is None:
        max_steps = 64 * (max_sweeps + 2) * (m + 2) + 2 * schedule.max_step

    def note_topology_change() -> None:
        """Veto stale termination; cancel an in-flight TERMINATE wave."""
        nonlocal generation, ring_reopens, rekick_pending
        current_sweep = max(agent._last_acted_sweep for agent in agents)
        agents[0].min_termination_sweep = max(
            agents[0].min_termination_sweep, current_sweep + 1
        )
        if finished_view(0):
            # TERMINATE is circulating on a pre-failure norm: reopen.
            generation += 1
            ring_reopens += 1
            if trace:
                tracer.emit("protocol.reopen", step=step, generation=generation)
                tracer.count("protocol.ring_reopens")
            bus.purge(MessageKind.TERMINATE)
            for j in range(m):
                finished_at_crash[j] = False
                if alive[j]:
                    agents[j].finished = False
                    agents[j]._terminated = False
            for sender in [
                s for s, msg in last_sent.items()
                if msg.kind is MessageKind.TERMINATE
            ]:
                del last_sent[sender]
            rekick_pending = True

    agents[0].start()
    while True:
        if all(finished_view(j) for j in range(m)):
            break
        step += 1
        if step > max_steps:
            raise RuntimeError(
                f"resilient protocol exceeded {max_steps} supervisor steps "
                "without terminating (livelock?)"
            )

        # -- 1. fault injection ---------------------------------------
        for event in schedule.events_at(step):
            events_applied += 1
            rank = computer = event.target
            if trace:
                tracer.emit(
                    "protocol.fault",
                    step=step,
                    kind=event.kind.name.lower(),
                    target=event.target,
                )
            if event.kind is FaultKind.AGENT_CRASH:
                if not alive[rank]:
                    raise RuntimeError(f"agent {rank} crashed twice")
                finished_at_crash[rank] = agents[rank].finished
                alive[rank] = False
                bus.mark_dead(rank)
                crashes += 1
            elif event.kind is FaultKind.AGENT_RESTART:
                bus.mark_alive(rank)
                alive[rank] = True
                store.restore(agents[rank], board, generation=generation)
                if trace:
                    # norm_history_length lets the trace replay the
                    # rollback: the reconstruction truncates rank 0's
                    # history to the checkpointed prefix.
                    tracer.emit(
                        "protocol.restore",
                        rank=rank,
                        step=step,
                        norm_history_length=len(agents[rank].norm_history),
                    )
                    tracer.count("protocol.checkpoint_restores")
                # The checkpointed flows may predate a computer failure:
                # re-project the restored row onto the live computer set.
                row = project_profile(
                    board.flows[rank][None, :],
                    board.online_mask,
                    fallback_rates=system.service_rates,
                )[0]
                board.publish(rank, row)
                detector.beat(rank, step)
                restarts += 1
                stall = 0
                backoff.reset()
            elif event.kind is FaultKind.COMPUTER_DOWN:
                board.set_computer_online(computer, False)
                computers_failed.append(computer)
                # Stability re-check: raises CapacityExhausted (typed,
                # with diagnostics) when the survivors cannot carry Phi.
                surviving_subsystem(system, board.online_mask)
                projected = project_profile(
                    board.flows,
                    board.online_mask,
                    fallback_rates=system.service_rates,
                )
                for j in range(m):
                    board.publish(j, projected[j])
                _refresh_baselines(system, board, agents)
                note_topology_change()
            elif event.kind is FaultKind.COMPUTER_UP:
                board.set_computer_online(computer, True)
                computers_restored.append(computer)
                note_topology_change()
        if rekick_pending and alive[0]:
            next_sweep = max(agent._last_acted_sweep for agent in agents) + 1
            agents[0].rekick(next_sweep)
            rekick_pending = False

        # -- 2. message delivery --------------------------------------
        delivered = 0
        for rank in bus.pending_ranks():
            message = bus.recv(rank)
            if trace:
                kind = message.kind.name.lower()
                tracer.emit(
                    "protocol.deliver",
                    kind=kind,
                    sender=message.sender,
                    receiver=message.receiver,
                    sweep=message.sweep,
                    norm=message.norm,
                )
                tracer.count(f"protocol.messages.{kind}")
            agents[rank].handle(message)
            delivered += 1
            messages += 1

        # -- 3. heartbeats and failure detection ----------------------
        for j in range(m):
            if alive[j]:
                detector.beat(j, step)
        suspected = detector.check(step)
        if trace:
            for j in sorted(suspected - known_suspects):
                tracer.emit("protocol.suspect", rank=j, step=step)
                tracer.count("protocol.suspicions")
        known_suspects = set(suspected)

        # -- 4. periodic checkpoints ----------------------------------
        if checkpoint_interval and step % checkpoint_interval == 0:
            for j in range(m):
                if alive[j]:
                    store.capture(
                        agents[j], board, step=step, generation=generation
                    )
                    if trace:
                        tracer.emit("protocol.checkpoint", step=step, rank=j)
                        tracer.count("protocol.checkpoint_captures")

        # -- 5. stall recovery ----------------------------------------
        if delivered:
            stall = 0
            backoff.reset()
            continue
        if all(finished_view(j) for j in range(m)):
            continue  # loop top will break
        if rekick_pending:
            continue  # ring intentionally idle until rank 0 restarts
        stall += 1
        if stall < backoff.current:
            continue
        stall = 0
        backoff.advance()
        progressed = 0
        blocked: list[int] = []
        for _sender, message in sorted(last_sent.items()):
            receiver = message.receiver
            if finished_view(receiver):
                continue
            if detector.is_suspected(receiver):
                blocked.append(receiver)
                continue
            bus.resend(message)
            retransmissions += 1
            progressed += 1
            if trace:
                tracer.emit(
                    "protocol.retransmit",
                    kind=message.kind.name.lower(),
                    sender=message.sender,
                    receiver=message.receiver,
                    sweep=message.sweep,
                )
                tracer.count("protocol.retransmissions")
        # Every circulation needs every agent: a suspected, unfinished
        # rank with no restart on the schedule is a dead end no amount
        # of retransmission can route around.
        dead_ends = sorted(
            {r for r in blocked if not schedule.pending_restart(r, step)}
        )
        if dead_ends:
            raise RuntimeError(
                f"agents {dead_ends} crashed with no scheduled restart; "
                "the ring cannot recover"
            )
        if not progressed and not blocked:
            raise RuntimeError(
                "protocol deadlocked with nothing to retransmit"
            )

    online = board.online_mask
    fractions = board.flows / system.arrival_rates[:, None]
    profile = StrategyProfile(fractions)
    norms = np.asarray(agents[0].norm_history, dtype=float)
    converged = bool(norms.size and norms[-1] <= tolerance)
    result = NashResult(
        profile=profile,
        converged=converged,
        iterations=int(norms.size),
        norm_history=norms,
        user_times=system.user_response_times(profile.fractions),
    )
    if trace:
        tracer.emit(
            "protocol.done",
            driver="resilient",
            converged=converged,
            sweeps=int(norms.size),
            messages_sent=messages,
            retransmissions=retransmissions,
            crashes=crashes,
            restarts=restarts,
            suspicions=detector.suspicions,
            messages_lost_to_crash=bus.lost_to_crash,
            ring_reopens=ring_reopens,
            steps=step,
            degraded=bool(not online.all()),
        )
    return ResilientOutcome(
        result=result,
        messages_sent=messages,
        transcript=bus.transcript,
        retransmissions=retransmissions,
        crashes=crashes,
        restarts=restarts,
        checkpoint_restores=store.restores,
        checkpoint_captures=store.captures,
        suspicions=detector.suspicions,
        messages_lost_to_crash=bus.lost_to_crash,
        computers_failed=tuple(computers_failed),
        computers_restored=tuple(computers_restored),
        online_mask=tuple(bool(b) for b in online),
        degraded=bool(not online.all()),
        ring_reopens=ring_reopens,
        steps=step,
        events_applied=events_applied,
        events_unapplied=schedule.n_events - events_applied,
    )
