"""Fault injection for the distributed protocol.

The in-process :class:`~repro.distributed.network.MessageBus` delivers
every message exactly once — real networks do not.  This module provides
a drop/duplicate-injecting bus plus the two mechanisms that make the
paper's token-ring protocol survive it:

* **sender-side retransmission** — the runtime keeps each agent's last
  outbound message (via the bus's outbox hook) and re-sends it when the
  ring stalls (the in-process analogue of a retransmission timeout);
* **receiver-side deduplication** — TOKEN messages carry ``(sweep,
  sender)``; an agent that already acted on a given token ignores
  duplicates, making the retransmission at-least-once semantics safe.

Determinism is preserved: faults are driven by a seeded generator, so a
given ``(seed, drop, duplicate)`` configuration replays exactly.  The
fault-tolerance experiment shows the protocol reaches the *same*
equilibrium as the lossless run, paying only extra messages.

Crash faults (agents dying and restarting, computers going offline) are
the next layer up: see :mod:`repro.distributed.chaos`.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
)
from repro.core.strategy import StrategyProfile
from repro.distributed.messages import Message, MessageKind
from repro.distributed.network import MessageBus
from repro.distributed.node import ComputerBoard, UserAgent
from repro.distributed.runtime import ProtocolOutcome, seed_initial_state
from repro.telemetry.trace import Tracer, current_tracer

__all__ = ["LossyMessageBus", "DedupingAgent", "run_nash_protocol_lossy"]


class LossyMessageBus(MessageBus):
    """A message bus that drops and duplicates messages.

    Parameters
    ----------
    n_agents:
        Ring size.
    drop:
        Probability that a sent message is silently lost.
    duplicate:
        Probability that a delivered message is enqueued twice.
    seed:
        Fault-stream seed (replayable).
    """

    def __init__(
        self,
        n_agents: int,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        seed: int = 0,
        record_transcript: bool = True,
    ):
        super().__init__(n_agents, record_transcript=record_transcript)
        if not 0.0 <= drop < 1.0:
            raise ValueError("drop probability must lie in [0, 1)")
        if not 0.0 <= duplicate < 1.0:
            raise ValueError("duplicate probability must lie in [0, 1)")
        self.drop = drop
        self.duplicate = duplicate
        self._fault_rng = np.random.default_rng(seed)
        self.dropped = 0
        self.duplicated = 0

    def _deliver(self, message: Message) -> None:
        roll = self._fault_rng.random()
        if roll < self.drop:
            self.dropped += 1
            return
        super()._deliver(message)
        if self._fault_rng.random() < self.duplicate:
            self.duplicated += 1
            super()._deliver(message)


class DedupingAgent(UserAgent):
    """A user agent that ignores token messages it has already acted on.

    A TOKEN for sweep ``l`` is acted on at most once; retransmitted or
    duplicated copies are dropped on the floor.  TERMINATE is naturally
    idempotent (acting twice is harmless), so only forwarding is guarded.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._last_acted_sweep = 0
        self._terminated = False

    def handle(self, message: Message) -> None:
        if message.kind is MessageKind.TOKEN:
            if message.sweep <= self._last_acted_sweep:
                return  # duplicate of an already-processed token
            self._last_acted_sweep = message.sweep
        elif message.kind is MessageKind.TERMINATE:
            if self._terminated:
                return
            self._terminated = True
        # A retransmission can legitimately arrive after the agent
        # considered itself finished; squelch instead of crashing.
        if self.finished:
            return
        super().handle(message)


def run_nash_protocol_lossy(
    system: DistributedSystem,
    *,
    drop: float = 0.1,
    duplicate: float = 0.05,
    fault_seed: int = 0,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    max_retransmissions: int = 1_000_000,
    tracer: Tracer | None = None,
) -> ProtocolOutcome:
    """The NASH ring protocol over a faulty network.

    Mirrors :func:`repro.distributed.runtime.run_nash_protocol` but sends
    every message over a :class:`LossyMessageBus`; when the ring stalls
    (every mailbox empty, protocol unfinished) the runtime retransmits
    the last message each unfinished agent sent — at-least-once delivery,
    made safe by :class:`DedupingAgent`.  ``tracer`` additionally records
    every delivery and retransmission (see docs/OBSERVABILITY.md).
    """
    tracer = tracer if tracer is not None else current_tracer()
    trace = tracer.enabled
    m = system.n_users
    board = ComputerBoard(system.service_rates, m)
    bus = LossyMessageBus(
        m, drop=drop, duplicate=duplicate, seed=fault_seed
    )
    agents = [
        DedupingAgent(
            rank=j,
            job_rate=float(system.arrival_rates[j]),
            board=board,
            bus=bus,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            tracer=tracer,
        )
        for j in range(m)
    ]

    seed_initial_state(system, board, agents, init)
    if trace:
        tracer.emit(
            "protocol.start",
            driver="lossy",
            users=m,
            computers=system.n_computers,
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            drop=drop,
            duplicate=duplicate,
        )

    # Track each agent's most recent outbound message for retransmission.
    # The outbox hook fires before the lossy transport rolls the dice, so
    # dropped messages are tracked too — the sender believes it sent.
    last_sent: dict[int, Message] = {}
    bus.add_outbox_hook(lambda message: last_sent.__setitem__(message.sender, message))

    agents[0].start()
    messages = 0
    retransmissions = 0
    while True:
        pending = bus.pending_ranks()
        if pending:
            for rank in pending:
                message = bus.recv(rank)
                if trace:
                    kind = message.kind.name.lower()
                    tracer.emit(
                        "protocol.deliver",
                        kind=kind,
                        sender=message.sender,
                        receiver=message.receiver,
                        sweep=message.sweep,
                        norm=message.norm,
                    )
                    tracer.count(f"protocol.messages.{kind}")
                agents[rank].handle(message)
                messages += 1
            continue
        if all(agent.finished for agent in agents):
            break
        # Ring stalled: a message was dropped. Retransmit the most recent
        # outbound message of every agent whose successor still needs it.
        # (A finished receiver already has everything it will ever act
        # on — retransmitting TERMINATE to it would only burn messages.)
        if retransmissions >= max_retransmissions:
            raise RuntimeError("retransmission budget exhausted")
        progressed = False
        for sender, message in sorted(last_sent.items()):
            if not agents[message.receiver].finished:
                bus.resend(message)
                retransmissions += 1
                progressed = True
                if trace:
                    tracer.emit(
                        "protocol.retransmit",
                        kind=message.kind.name.lower(),
                        sender=message.sender,
                        receiver=message.receiver,
                        sweep=message.sweep,
                    )
                    tracer.count("protocol.retransmissions")
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("protocol deadlocked with nothing to retransmit")

    fractions = board.flows / system.arrival_rates[:, None]
    profile = StrategyProfile(fractions)
    norms = np.asarray(agents[0].norm_history, dtype=float)
    converged = bool(norms.size and norms[-1] <= tolerance)
    result = NashResult(
        profile=profile,
        converged=converged,
        iterations=int(norms.size),
        norm_history=norms,
        user_times=system.user_response_times(profile.fractions),
    )
    if trace:
        tracer.emit(
            "protocol.done",
            driver="lossy",
            converged=converged,
            sweeps=int(norms.size),
            messages_sent=messages,
            retransmissions=retransmissions,
            dropped=bus.dropped,
            duplicated=bus.duplicated,
        )
    outcome = ProtocolOutcome(
        result=result,
        messages_sent=messages,
        transcript=bus.transcript,
        retransmissions=retransmissions,
    )
    return outcome
