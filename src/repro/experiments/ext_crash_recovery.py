"""EXT9 — crash-fault tolerance of the distributed NASH protocol.

The paper's protocol assumes reliable users and computers; this
experiment measures what the recovery machinery of
:mod:`repro.distributed.chaos` pays to drop that assumption.  Each row
replays the token-ring protocol under a seeded fault schedule that
crashes a user agent mid-run (restarting it from a checkpoint a few
steps later) and permanently fails one computer, over a lossy network —
then checks the *degraded-equilibrium guarantee*: the profile the
survivors converge to must match a from-scratch
:func:`~repro.core.degradation.degraded_equilibrium` solve on the
surviving computer set.

The interesting outputs are the overhead columns: extra sweeps and
retransmissions relative to the fault-free run, checkpoint restores, and
the failure detector's suspicion count — the price of crash tolerance,
paid in messages rather than in equilibrium quality (``profile_gap``
stays at numerical noise).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.degradation import degraded_equilibrium
from repro.distributed.chaos import (
    FaultSchedule,
    run_nash_protocol_resilient,
)
from repro.experiments.common import ExperimentTable
from repro.workloads.configs import paper_table1_system

__all__ = ["run_crash_recovery"]


def run_crash_recovery(
    *,
    utilization: float = 0.6,
    n_users: int = 6,
    seeds: Sequence[int] = (0, 1, 2),
    drop: float = 0.15,
    duplicate: float = 0.05,
    tolerance: float = 1e-8,
) -> ExperimentTable:
    """Chaos-replay the protocol and verify the degraded equilibrium.

    One fault-free baseline row, then one row per seed.  Every faulty
    run crashes one agent (with restart) and fails one computer for
    good; computers eligible to fail are the small ones (rate <= 50
    jobs/s), each of which the Table-1 system can lose while remaining
    stable at the default utilization.
    """
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    clean = run_nash_protocol_resilient(system, tolerance=tolerance)
    reference = degraded_equilibrium(
        system, clean.online_mask, tolerance=tolerance
    )
    columns = (
        "fault_seed",
        "crashes",
        "restarts",
        "restores",
        "suspicions",
        "failed_computer",
        "sweeps",
        "messages",
        "retransmissions",
        "lost_to_crash",
        "profile_gap",
        "converged",
    )
    rows: list[dict[str, object]] = [
        {
            "fault_seed": "-",
            "crashes": 0,
            "restarts": 0,
            "restores": 0,
            "suspicions": 0,
            "failed_computer": "-",
            "sweeps": clean.result.iterations,
            "messages": clean.messages_sent,
            "retransmissions": clean.retransmissions,
            "lost_to_crash": 0,
            "profile_gap": float(
                np.abs(
                    clean.result.profile.fractions
                    - reference.profile.fractions
                ).max()
            ),
            "converged": clean.result.converged,
        }
    ]
    expendable = [
        i for i, rate in enumerate(system.service_rates) if rate <= 50.0
    ]
    for seed in seeds:
        schedule = FaultSchedule.random(
            n_agents=n_users,
            seed=seed,
            horizon=max(clean.steps, 48),
            agent_crashes=1,
            computer_failures=1,
            computer_targets=expendable,
        )
        outcome = run_nash_protocol_resilient(
            system,
            schedule,
            drop=drop,
            duplicate=duplicate,
            fault_seed=seed,
            tolerance=tolerance,
        )
        degraded = degraded_equilibrium(
            system, outcome.online_mask, tolerance=tolerance
        )
        gap = float(
            np.abs(
                outcome.result.profile.fractions
                - degraded.profile.fractions
            ).max()
        )
        rows.append(
            {
                "fault_seed": seed,
                "crashes": outcome.crashes,
                "restarts": outcome.restarts,
                "restores": outcome.checkpoint_restores,
                "suspicions": outcome.suspicions,
                "failed_computer": ",".join(
                    str(c) for c in outcome.computers_failed
                ),
                "sweeps": outcome.result.iterations,
                "messages": outcome.messages_sent,
                "retransmissions": outcome.retransmissions,
                "lost_to_crash": outcome.messages_lost_to_crash,
                "profile_gap": gap,
                "converged": outcome.result.converged,
            }
        )
    return ExperimentTable(
        experiment_id="EXT9",
        title=(
            "Crash-fault tolerance: recovery overhead and the degraded "
            "equilibrium (extension beyond the paper)"
        ),
        columns=columns,
        rows=tuple(rows),
        notes=(
            f"Table-1 system, {n_users} users, utilization {utilization};"
            f" network drop={drop}, duplicate={duplicate}.",
            "Each faulty run crashes one agent (restarted from its"
            " checkpoint) and permanently fails one computer of rate"
            " <= 50 jobs/s.",
            "profile_gap is the max |fraction| difference to a"
            " from-scratch Nash solve on the surviving computers —"
            " the degraded-equilibrium guarantee.",
        ),
    )
