"""EXT6/ABL5 — deployment-grade runs of the NASH algorithm.

* **EXT6 (measured closed loop)** — the algorithm as the paper would
  deploy it: no oracle rates, each cycle *measures* run-queue lengths on
  the simulated system, inverts the M/M/1 occupancy law, and best-responds
  to the estimates.  The loop settles in a neighbourhood of the analytic
  equilibrium whose radius shrinks with the measurement window.
* **ABL5 (network faults)** — the ring protocol on a lossy network
  (message drops and duplicates) with sender retransmission and
  receiver deduplication: the same equilibrium, bought with extra
  messages.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nash import compute_nash_equilibrium
from repro.distributed.faults import run_nash_protocol_lossy
from repro.experiments.common import ExperimentTable
from repro.simengine.estimation import run_measured_best_reply
from repro.workloads.configs import paper_table1_system

__all__ = ["run_measured_loop", "run_fault_tolerance"]


def run_measured_loop(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    windows: Sequence[float] = (50.0, 100.0, 200.0, 400.0),
    cycles: int = 6,
    seed: int = 17,
) -> ExperimentTable:
    """EXT6: closed-loop regret vs measurement window length."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    equilibrium = compute_nash_equilibrium(system)
    scale = float(equilibrium.user_times.mean())

    rows = []
    for window in windows:
        outcome = run_measured_best_reply(
            system,
            cycles=cycles,
            measurement_window=float(window),
            seed=seed,
        )
        tail = outcome.regret_history[cycles // 2 :]
        rows.append(
            {
                "window_seconds": float(window),
                "mean_tail_regret": float(tail.mean()),
                "relative_to_equilibrium_time": float(tail.mean() / scale),
                "mean_load_estimate_error": float(
                    outcome.load_estimate_errors.mean()
                ),
            }
        )
    return ExperimentTable(
        experiment_id="EXT6",
        title="Measured closed loop — regret vs measurement window",
        columns=(
            "window_seconds",
            "mean_tail_regret",
            "relative_to_equilibrium_time",
            "mean_load_estimate_error",
        ),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, utilization {utilization:.0%}; each cycle "
            "simulates the profile, samples run queues every 0.5s, inverts "
            "E[N]=rho/(1-rho), and best-responds to the estimates",
        ),
    )


def run_fault_tolerance(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    fault_levels: Sequence[tuple[float, float]] = (
        (0.0, 0.0),
        (0.1, 0.0),
        (0.2, 0.1),
        (0.3, 0.2),
    ),
    tolerance: float = 1e-6,
) -> ExperimentTable:
    """ABL5: protocol correctness and message overhead under network faults."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    reference = compute_nash_equilibrium(system, tolerance=tolerance)

    rows = []
    baseline_messages: int | None = None
    for drop, duplicate in fault_levels:
        outcome = run_nash_protocol_lossy(
            system,
            drop=float(drop),
            duplicate=float(duplicate),
            fault_seed=29,
            tolerance=tolerance,
        )
        if baseline_messages is None:
            baseline_messages = outcome.messages_sent
        gap = float(
            np.abs(outcome.result.user_times - reference.user_times).max()
        )
        rows.append(
            {
                "drop": float(drop),
                "duplicate": float(duplicate),
                "converged": outcome.result.converged,
                "messages": outcome.messages_sent,
                "message_overhead": outcome.messages_sent / baseline_messages
                - 1.0,
                "max_time_gap_vs_lossless": gap,
            }
        )
    return ExperimentTable(
        experiment_id="ABL5",
        title="Fault tolerance — ring protocol on a lossy network",
        columns=(
            "drop",
            "duplicate",
            "converged",
            "messages",
            "message_overhead",
            "max_time_gap_vs_lossless",
        ),
        rows=tuple(rows),
        notes=(
            "sender retransmission + receiver dedup give at-least-once "
            "token delivery; the equilibrium is unchanged, only traffic "
            "grows",
        ),
    )
