"""EXT2/ABL3/ABL4 — dynamics-oriented extensions and ablations.

* **EXT2 (static vs dynamic dispatch)** — how much could the paper's
  static NASH equilibrium gain from live queue-state information?  The
  event engine simulates the classical dynamic policies (JSQ, least
  expected delay, power-of-two choices) against the static schemes on the
  same job streams — the paper's "dynamic load balancing" future work,
  quantified.
* **ABL3 (best-reply update order)** — the paper serializes updates
  round-robin.  This ablation compares round-robin (Gauss-Seidel), random
  permutations, and simultaneous (Jacobi) updates; the last oscillates,
  demonstrating that the serialization is load-bearing.
* **ABL4 (observation noise)** — the paper's users estimate available
  rates from run-queue lengths.  This ablation injects lognormal
  observation noise into the best-reply dynamics and measures the
  distance-to-equilibrium plateau, with and without EMA smoothing.
* **EXT3 (cooperative bargaining)** — the Nash Bargaining Solution next
  to NASH/GOS/PS, completing the paper's intro taxonomy (global /
  cooperative / noncooperative).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nash import NashSolver
from repro.core.uncertainty import NoisyNashSolver
from repro.experiments.common import ExperimentTable
from repro.schemes import (
    GlobalOptimalScheme,
    IndividualOptimalScheme,
    NashScheme,
    ProportionalScheme,
)
from repro.schemes.cooperative import CooperativeScheme
from repro.simengine import (
    JoinShortestQueue,
    LeastExpectedDelay,
    PowerOfTwoChoices,
    simulate_policy,
    simulate_profile,
)
from repro.workloads.configs import paper_table1_system

__all__ = [
    "run_dynamic_policies",
    "run_update_order_ablation",
    "run_noise_ablation",
    "run_cooperative",
]


def run_dynamic_policies(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    horizon: float = 400.0,
    warmup: float = 40.0,
    seed: int = 11,
) -> ExperimentTable:
    """EXT2: simulated mean response time, static schemes vs dynamic policies."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    rows = []

    static = {
        "NASH (static)": NashScheme().allocate(system).profile,
        "PS (static)": ProportionalScheme().allocate(system).profile,
    }
    for name, profile in static.items():
        result = simulate_profile(
            system, profile, horizon=horizon, warmup=warmup, seed=seed
        )
        rows.append(
            {
                "policy": name,
                "mean_response_time": result.overall_mean_response_time(),
                "jobs": result.total_jobs,
            }
        )

    dynamic = {
        "JSQ (dynamic)": JoinShortestQueue(),
        "LED (dynamic)": LeastExpectedDelay(),
        "Po2 (dynamic)": PowerOfTwoChoices(),
    }
    for name, policy in dynamic.items():
        result = simulate_policy(
            system, policy, horizon=horizon, warmup=warmup, seed=seed
        )
        rows.append(
            {
                "policy": name,
                "mean_response_time": result.overall_mean_response_time(),
                "jobs": result.total_jobs,
            }
        )
    return ExperimentTable(
        experiment_id="EXT2",
        title="Static schemes vs dynamic dispatch policies (simulated)",
        columns=("policy", "mean_response_time", "jobs"),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, utilization {utilization:.0%}, event-driven "
            f"simulation over {horizon:g}s (warm-up {warmup:g}s), shared "
            "seed; dynamic policies observe exact global queue state — an "
            "idealized upper bound on dynamic information",
        ),
    )


def run_update_order_ablation(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    tolerance: float = 1e-6,
    max_sweeps: int = 500,
) -> ExperimentTable:
    """ABL3: round-robin vs random vs simultaneous best replies."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    rows = []
    for order in ("roundrobin", "random", "simultaneous"):
        solver = NashSolver(
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            order=order,  # type: ignore[arg-type]
            seed=7,
        )
        result = solver.solve(system, "proportional")
        rows.append(
            {
                "order": order,
                "converged": result.converged,
                "iterations": result.iterations,
                "final_norm": result.final_norm,
            }
        )
    return ExperimentTable(
        experiment_id="ABL3",
        title="Ablation — best-reply update order (the ring is load-bearing)",
        columns=("order", "converged", "iterations", "final_norm"),
        rows=tuple(rows),
        notes=(
            "simultaneous (Jacobi) replies herd onto the same computers "
            "and oscillate; the paper's round-robin token ring is what "
            "makes the dynamics converge",
        ),
    )


def run_noise_ablation(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    noises: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    sweeps: int = 40,
    seed: int = 5,
) -> ExperimentTable:
    """ABL4: best-reply dynamics under observation noise."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    rows = []
    for noise in noises:
        raw = NoisyNashSolver(
            noise=float(noise), smoothing=1.0, sweeps=sweeps, seed=seed
        ).solve(system)
        smoothed = NoisyNashSolver(
            noise=float(noise), smoothing=0.3, sweeps=sweeps, seed=seed
        ).solve(system)
        rows.append(
            {
                "noise": float(noise),
                "final_regret_raw": raw.mean_final_regret,
                "final_regret_smoothed": smoothed.mean_final_regret,
                "projections_raw": raw.projections,
            }
        )
    return ExperimentTable(
        experiment_id="ABL4",
        title="Ablation — observation noise on available-rate estimates",
        columns=(
            "noise",
            "final_regret_raw",
            "final_regret_smoothed",
            "projections_raw",
        ),
        rows=tuple(rows),
        notes=(
            "regret = max benefit of a unilateral deviation after the "
            f"transient ({sweeps} sweeps); smoothing = EMA(0.3) on each "
            "user's rate estimates — the paper's 'statistical estimation "
            "of the run queue length'",
        ),
    )


def run_cooperative(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
) -> ExperimentTable:
    """EXT3: the Nash Bargaining Solution vs the paper's schemes."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    schemes = (
        NashScheme(),
        CooperativeScheme(),
        GlobalOptimalScheme(),
        IndividualOptimalScheme(),
        ProportionalScheme(),
    )
    rows = []
    for scheme in schemes:
        result = scheme.allocate(system)
        rows.append(
            {
                "scheme": result.scheme,
                "overall_time": result.overall_time,
                "fairness": result.fairness,
                "worst_user_time": float(result.user_times.max()),
            }
        )
    return ExperimentTable(
        experiment_id="EXT3",
        title="Cooperative bargaining (NBS) vs the paper's schemes",
        columns=("scheme", "overall_time", "fairness", "worst_user_time"),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, utilization {utilization:.0%}; NBS uses the "
            "PS allocation as the disagreement point",
        ),
    )
