"""SIM — Section 4.1's simulation methodology, validated.

The paper measured its schemes with an event-driven simulation (Sim++),
5 replications with independent random streams, and accepted runs whose
standard error stayed below 5%.  This experiment reruns that methodology
with the reproduction's simulation engine on the NASH allocation and
compares the simulated per-user expected response times against the
analytic M/M/1 values — the check that the simulated substrate and the
analytic game agree.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentTable
from repro.experiments.replication import simulate_batch_parallel
from repro.schemes import NashScheme
from repro.simengine.stats import replicate
from repro.workloads.configs import paper_table1_system

__all__ = ["run"]


def run(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    horizon: float = 4000.0,
    warmup: float = 400.0,
    n_replications: int = 5,
    seed: int = 2002,
    n_workers: int = 1,
) -> ExperimentTable:
    """Simulated vs analytic per-user expected response times (NASH).

    The default horizon generates roughly ``0.6 * 510 * 3600 ~ 1.1M``
    counted jobs across the replications, matching the paper's "1 to 2
    millions jobs typically".  ``n_workers > 1`` fans the replications
    over the process pool with the pre-drawn uniform block shared
    zero-copy (:mod:`repro.experiments.replication`) — bit-identical to
    the serial batch.
    """
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    allocation = NashScheme().allocate(system)

    def measure_batch(seeds) -> np.ndarray:
        # All replications in one vectorized pass (chunked across the
        # pool when n_workers > 1) — bit-identical to looping
        # simulate_profile_fast over the seed tree, just faster.
        results = simulate_batch_parallel(
            system,
            allocation.profile,
            horizon=horizon,
            warmup=warmup,
            seeds=seeds,
            n_workers=n_workers,
        )
        return np.stack([r.user_mean_response_times for r in results])

    stats = replicate(
        simulate_batch=measure_batch, n_replications=n_replications, seed=seed
    )
    analytic = allocation.user_times
    rows = []
    for j in range(n_users):
        rows.append(
            {
                "user": j + 1,
                "analytic": float(analytic[j]),
                "simulated": float(stats.mean[j]),
                "std_error": float(stats.std_error[j]),
                "rel_error": float(
                    abs(stats.mean[j] - analytic[j]) / analytic[j]
                ),
            }
        )
    return ExperimentTable(
        experiment_id="SIM",
        title="Sec 4.1 — simulation vs analytic (NASH allocation)",
        columns=("user", "analytic", "simulated", "std_error", "rel_error"),
        rows=tuple(rows),
        notes=(
            f"{n_replications} replications, horizon {horizon:g}s "
            f"(warm-up {warmup:g}s), independent PCG64 streams",
            "paper acceptance criterion (std error < 5%): "
            + ("met" if stats.within_relative_error(0.05) else "NOT met"),
        ),
    )
