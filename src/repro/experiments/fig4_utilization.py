"""F4 — the paper's Figure 4 (response time and fairness vs utilization).

Sweeps the Table-1 system's utilization from 10% to 90% and reports, for
each of NASH/GOS/IOS/PS, the overall expected response time (top panel)
and Jain's fairness index of the per-user times (bottom panel).

Qualitative shape to reproduce (paper Sec. 4.2.2):

* low load (10-40%): NASH, GOS and IOS nearly coincide; PS is worst;
* medium load (~50%): NASH ~30% better than PS, within ~10% of GOS;
* high load: IOS and PS coincide (exactly, once every computer is used)
  and sit above GOS and NASH, which stay close together;
* fairness: PS and IOS pinned at 1; NASH close to 1; GOS degrades
  sharply with load.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    SCHEME_ORDER,
    ExperimentTable,
    run_schemes_sweep,
)
from repro.workloads.sweeps import DEFAULT_UTILIZATIONS, utilization_sweep

__all__ = ["run"]


def run(
    *,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_users: int = 10,
    n_workers: int = 1,
    continuation: bool = False,
) -> ExperimentTable:
    """Overall response time and fairness per scheme across utilizations.

    ``n_workers > 1`` evaluates the sweep points over a process pool;
    ``continuation=True`` instead walks the utilizations in order and
    warm-starts each NASH solve from the previous point's equilibrium
    (same certified equilibria, fewer best-reply sweeps — see
    docs/PERFORMANCE.md).
    """
    columns = ["utilization"]
    columns += [f"ert_{name.lower()}" for name in SCHEME_ORDER]
    columns += [f"fairness_{name.lower()}" for name in SCHEME_ORDER]
    rows = []
    sweep = run_schemes_sweep(
        utilization_sweep(utilizations, n_users=n_users),
        n_workers=n_workers,
        continuation=continuation,
    )
    for rho, results in sweep:
        row: dict[str, object] = {"utilization": rho}
        for name in SCHEME_ORDER:
            row[f"ert_{name.lower()}"] = results[name].overall_time
            row[f"fairness_{name.lower()}"] = results[name].fairness
        rows.append(row)
    return ExperimentTable(
        experiment_id="F4",
        title="Figure 4 — expected response time and fairness vs utilization",
        columns=tuple(columns),
        rows=tuple(rows),
        notes=(
            f"Table-1 system shared by {n_users} users; analytic evaluation "
            "at each scheme's allocation (simulation cross-validation in "
            "experiment SIM)",
        ),
    )
