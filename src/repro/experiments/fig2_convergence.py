"""F2 — the paper's Figure 2 (norm vs number of iterations).

Runs the NASH best-reply algorithm on the Table-1 system (16 computers,
10 users) from both initializations and reports the convergence norm
after every sweep.  The paper's qualitative claim: NASH_P (proportional
initialization) starts much closer to the equilibrium and needs
substantially fewer iterations than NASH_0 at any acceptance tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.core.nash import NashSolver
from repro.experiments.common import ExperimentTable
from repro.workloads.configs import paper_table1_system

__all__ = ["run"]


def run(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    tolerance: float = 1e-8,
    max_sweeps: int = 500,
) -> ExperimentTable:
    """Norm trajectory per sweep for NASH_0 and NASH_P.

    ``tolerance`` is set tight so both trajectories are traced far past
    any practical stopping point, as in the paper's semi-log plot.
    """
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    solver = NashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
    trajectories = {
        "NASH_0": solver.solve(system, "zero").norm_history,
        "NASH_P": solver.solve(system, "proportional").norm_history,
    }
    length = max(h.size for h in trajectories.values())
    rows = []
    for i in range(length):
        row: dict[str, object] = {"iteration": i + 1}
        for name, history in trajectories.items():
            row[f"norm_{name.lower()}"] = (
                float(history[i]) if i < history.size else None
            )
        rows.append(row)

    def iters_below(history: np.ndarray, eps: float) -> int:
        below = np.flatnonzero(history <= eps)
        return int(below[0]) + 1 if below.size else -1

    notes = [
        f"system: Table 1, {n_users} users, utilization {utilization:.0%}",
    ]
    for eps in (1e-2, 1e-4, 1e-6):
        n0 = iters_below(trajectories["NASH_0"], eps)
        np_ = iters_below(trajectories["NASH_P"], eps)
        notes.append(f"iterations to norm <= {eps:g}: NASH_0={n0}, NASH_P={np_}")
    return ExperimentTable(
        experiment_id="F2",
        title="Figure 2 — convergence norm vs iterations (NASH_0 vs NASH_P)",
        columns=("iteration", "norm_nash_0", "norm_nash_p"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
