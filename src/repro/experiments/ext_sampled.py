"""EXT11 — power-of-k sampled information (extension beyond the paper).

The paper's NASH algorithm is full-information: every best reply
observes all ``n`` computers, so one sweep costs ``m·n`` availability
probes on top of the ``m`` token hops.  This experiment measures what
sampling buys: each player best-responds over its *current support*
(free — its own jobs already measure those queues) plus ``k`` seeded
random probes per sweep (:mod:`repro.core.sampled`).

Two scales, one table row per ``k``:

* **Solution quality at scale** — a class-space solve
  (:class:`~repro.core.classes.ClassNashSolver` with ``sample_k``) on a
  heterogeneous fleet of ``n`` computers (default 10⁴) serving tens of
  thousands of users grouped into classes, started from the all-zero
  profile so sampling actually restricts the replies.  Columns: the
  demand-weighted expected response time ``ert``, its gap to the exact
  full-information NASH solve (``vs_exact``, per cent), the **true**
  global epsilon from the sample certificate, sweeps, and total polls.
* **Message economics** — the ring protocol
  (:func:`~repro.distributed.sampled.run_sampled_nash_protocol`) on a
  smaller fleet, where every probe is a message to a computer.
  ``msgs_sweep`` is the per-sweep message cost (token hops + polls) and
  ``msg_x`` the reduction factor against the same driver at ``k = n`` —
  the full-information baseline, which honestly pays ``n`` polls per
  update.

The last row runs ``k = n``: the exact code path (bit-for-bit the
full-information solve), so its ``vs_exact`` is zero by construction and
its poll count is the ``m·n``-per-sweep cost every other row undercuts.
"""

from __future__ import annotations

import numpy as np

from repro.core.classes import ClassNashSolver, aggregate_users
from repro.core.model import DistributedSystem
from repro.distributed.sampled import run_sampled_nash_protocol
from repro.experiments.common import ExperimentTable

__all__ = ["run_sampled_information"]


def _class_heavy_system(
    *,
    n_computers: int,
    n_classes: int,
    users_per_class: int,
    utilization: float,
    seed: int,
) -> DistributedSystem:
    """A large heterogeneous fleet with many equal-rate user cohorts.

    Service rates are log-uniform over one decade; each of the
    ``n_classes`` cohorts repeats one job rate ``users_per_class``
    times, so :func:`~repro.core.classes.aggregate_users` at ``tol=0``
    recovers exactly ``n_classes`` classes.
    """
    rng = np.random.default_rng(seed)
    mu = np.exp(rng.uniform(np.log(10.0), np.log(100.0), size=n_computers))
    total = utilization * mu.sum()
    shares = rng.dirichlet(np.full(n_classes, 4.0))
    class_rates = np.maximum(shares, 0.1 / n_classes) * total
    class_rates *= total / (class_rates.sum() * users_per_class)
    phi = np.repeat(class_rates, users_per_class)
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


def _weighted_ert(demands: np.ndarray, class_times: np.ndarray) -> float:
    """Demand-weighted mean response time over the whole population."""
    return float(np.sum(demands * class_times) / demands.sum())


def run_sampled_information(
    *,
    ks: tuple[int, ...] = (1, 2, 3, 5, 8),
    n_computers: int = 10_000,
    n_classes: int = 48,
    users_per_class: int = 400,
    utilization: float = 0.6,
    tolerance: float = 1e-4,
    max_sweeps: int = 200,
    protocol_computers: int = 64,
    protocol_users: int = 24,
    seed: int = 0,
) -> ExperimentTable:
    """Sweep ``k`` over sampled class-space solves and the sampled ring.

    Every row reuses the same instance, order and seed, so the trailing
    ``k = n`` row — which takes the exact full-information code path —
    *is* the exact NASH reference every ``vs_exact`` figure divides by
    (its own ``vs_exact`` is zero bit-for-bit).
    """
    system = _class_heavy_system(
        n_computers=n_computers,
        n_classes=n_classes,
        users_per_class=users_per_class,
        utilization=utilization,
        seed=seed,
    )
    aggregation = aggregate_users(system)
    demands = aggregation.demands

    protocol_rng = np.random.default_rng((seed, 1))
    protocol_mu = np.exp(
        protocol_rng.uniform(np.log(10.0), np.log(100.0), size=protocol_computers)
    )
    protocol_system = DistributedSystem(
        service_rates=protocol_mu,
        arrival_rates=np.full(
            protocol_users, utilization * protocol_mu.sum() / protocol_users
        ),
    )
    baseline = run_sampled_nash_protocol(
        protocol_system, sample_k=protocol_computers, seed=seed
    )
    baseline_per_sweep = baseline.messages_sent / baseline.result.iterations

    columns = (
        "k",
        "sweeps",
        "polls",
        "ert",
        "vs_exact_pct",
        "epsilon",
        "msgs_sweep",
        "msg_x",
    )
    sweep_ks = (*ks, n_computers)
    solves = {
        k: ClassNashSolver(
            tolerance=tolerance,
            max_sweeps=max_sweeps,
            order="random",
            seed=seed,
            sample_k=k,
        ).solve(aggregation, init="zero")
        for k in sweep_ks
    }
    exact = solves[n_computers]
    ert_exact = _weighted_ert(demands, exact.class_times)

    rows: list[dict[str, object]] = []
    for k in sweep_ks:
        result = solves[k]
        certificate = result.sample
        assert certificate is not None
        ert = _weighted_ert(demands, result.class_times)

        protocol_k = min(k, protocol_computers)
        outcome = (
            baseline
            if protocol_k == protocol_computers
            else run_sampled_nash_protocol(
                protocol_system, sample_k=protocol_k, seed=seed
            )
        )
        per_sweep = outcome.messages_sent / outcome.result.iterations
        rows.append(
            {
                "k": certificate.k,
                "sweeps": result.iterations,
                "polls": certificate.polls,
                "ert": round(ert, 5),
                "vs_exact_pct": round(100.0 * (ert - ert_exact) / ert_exact, 3),
                "epsilon": float(certificate.epsilon),
                "msgs_sweep": round(per_sweep, 1),
                "msg_x": round(baseline_per_sweep / per_sweep, 1),
            }
        )

    return ExperimentTable(
        experiment_id="EXT11",
        title=(
            "Power-of-k sampled best replies: quality and message cost "
            "vs k (extension beyond the paper)"
        ),
        columns=columns,
        rows=tuple(rows),
        notes=(
            f"Quality scale: {n_computers} computers, "
            f"{n_classes * users_per_class} users in {n_classes} classes, "
            f"utilization {utilization}, zero init, random order, "
            f"tol {tolerance:g} (seed {seed}).",
            f"Exact full-information reference is the k=n row itself "
            f"(same order/seed, exact code path): ert {ert_exact:.5f}.",
            f"Message scale: ring protocol on {protocol_computers} "
            f"computers / {protocol_users} users; baseline k=n pays "
            f"{baseline_per_sweep:.0f} messages per sweep "
            f"({baseline.result.iterations} sweeps).",
            "epsilon is the true global certificate against exact "
            "full-information best responses, not the sampled norm.",
        ),
    )
