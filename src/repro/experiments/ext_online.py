"""EXT10 — a day in production for the online equilibrium engine.

The paper computes one equilibrium for one static system; a deployment
re-equilibrates continuously while users churn, demand drifts with the
time of day, and computers fail and come back.  This experiment drives
:class:`repro.engine.OnlineEquilibriumEngine` through the canonical
:func:`repro.workloads.traces.day_in_production_trace` and, at sampled
epochs, *closes the loop against the event simulator*: the epoch's
equilibrium profile is replayed on the nominal fleet with the offline
computers down for the whole run (``ServerOutage`` windows), and the
measured mean response time is compared with the analytic M/M/1
prediction the equilibrium was computed from.

Columns worth reading:

* ``sweeps``/``warm`` — the incremental re-equilibration cost per epoch
  (compare the cold bootstrap row);
* ``eps`` — the certificate epsilon; every sampled epoch, including the
  degraded ones solved on the surviving subsystem, is certified at the
  solver's standard target;
* ``sim_time`` vs ``pred_time`` — the simulator replay of the same
  allocation under outages, validating that degraded-mode equilibria
  describe the queues that actually remain.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem
from repro.engine.service import EngineConfig, EpochReport, OnlineEquilibriumEngine
from repro.engine.sla import SLAPolicy
from repro.experiments.common import ExperimentTable
from repro.simengine.outages import ServerOutage
from repro.simengine.simulator import simulate_profile
from repro.workloads.configs import paper_table1_system
from repro.workloads.traces import day_in_production_trace

__all__ = ["run_online_service"]


def _offered_utilization(report: EpochReport) -> float:
    assert report.system is not None
    return float(
        report.system.total_arrival_rate
        / report.system.total_processing_rate
    )


def run_online_service(
    *,
    n_epochs: int = 48,
    n_users: int = 12,
    utilization: float = 0.5,
    sla_target: float = 0.5,
    seed: int = 0,
    sim_every: int = 8,
    horizon: float = 600.0,
    warmup: float = 100.0,
) -> ExperimentTable:
    """Run the day-in-production trace and validate sampled epochs in-sim.

    Every ``sim_every``-th epoch — plus the first epoch of each
    degraded-mode window — is replayed in the event simulator on the
    *nominal* fleet with :class:`~repro.simengine.outages.ServerOutage`
    windows covering the offline computers.
    """
    base = paper_table1_system(utilization=utilization, n_users=n_users)
    trace = day_in_production_trace(n_epochs, seed=seed)
    engine = OnlineEquilibriumEngine(
        base,
        config=EngineConfig(sla=SLAPolicy(target_response_time=sla_target)),
    )
    run = engine.run(trace)

    sampled: list[EpochReport] = []
    previous_degraded = False
    for report in run.reports:
        fresh_degradation = report.degraded and not previous_degraded
        if report.index % sim_every == 0 or fresh_degradation:
            if report.status in ("ok", "degraded"):
                sampled.append(report)
        previous_degraded = report.degraded

    columns = (
        "epoch",
        "status",
        "online",
        "users",
        "rho_offered",
        "sweeps",
        "warm",
        "eps",
        "pred_time",
        "sim_time",
        "rel_err",
        "sla_violations",
    )
    rows: list[dict[str, object]] = []
    for report in sampled:
        assert report.system is not None and report.result is not None
        assert report.profile is not None
        # Replay on the nominal fleet: offline computers are outage
        # windows spanning the whole run, the profile's columns there
        # are zero by construction.
        full_system = DistributedSystem(
            service_rates=engine.state.service_rates,
            arrival_rates=report.system.arrival_rates,
            computer_names=engine.state.computer_names,
            user_names=report.system.user_names,
        )
        outages = [
            ServerOutage(computer, 0.0, float("inf"))
            for computer, alive in enumerate(report.online)
            if not alive
        ]
        sim = simulate_profile(
            full_system,
            report.profile,
            horizon=horizon,
            warmup=warmup,
            seed=np.random.SeedSequence((seed, report.index)),
            outages=outages or None,
        )
        phi = report.system.arrival_rates
        predicted = float(np.sum(phi * report.result.user_times) / phi.sum())
        counts = sim.user_job_counts
        measured = float(
            np.sum(counts * sim.user_mean_response_times) / counts.sum()
        )
        rows.append(
            {
                "epoch": report.index,
                "status": report.status,
                "online": int(report.online.sum()),
                "users": report.n_users,
                "rho_offered": round(_offered_utilization(report), 4),
                "sweeps": report.sweeps,
                "warm": report.warm_started,
                "eps": float(report.epsilon),
                "pred_time": round(predicted, 5),
                "sim_time": round(measured, 5),
                "rel_err": round(abs(measured - predicted) / predicted, 4),
                "sla_violations": report.sla_violations,
            }
        )

    sla = run.sla
    assert sla is not None
    return ExperimentTable(
        experiment_id="EXT10",
        title=(
            "Online equilibrium engine: a day in production under churn "
            "(extension beyond the paper)"
        ),
        columns=columns,
        rows=tuple(rows),
        notes=(
            f"Table-1 fleet, {n_users} base users, {n_epochs}-epoch "
            f"diurnal trace with failure/reopen, phi drift and a flash "
            f"crowd (seed {seed}).",
            f"Full run: {run.n_epochs} epochs, "
            f"{run.degraded_epochs} degraded, "
            f"{run.exhausted_epochs} exhausted, "
            f"{run.warm_epochs} warm-started, "
            f"{run.total_sweeps} total sweeps, "
            f"all certified: {run.all_certified}.",
            f"SLA (target {sla.target_response_time}s): "
            f"{sla.violations} user-epoch violations over "
            f"{sla.violation_epochs} epochs; worst time "
            f"{sla.worst_time:.4f}s.",
            "sim_time replays the epoch's profile on the nominal fleet "
            "with ServerOutage windows over the offline computers "
            "(event-driven M/M/1 network).",
        ),
    )
