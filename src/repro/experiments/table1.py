"""T1 — the paper's Table 1 (system configuration).

Regenerates the configuration table of the heterogeneous test system:
four computer types with relative rates {1, 2, 5, 10}, counts
{6, 5, 3, 2} and absolute rates {10, 20, 50, 100} jobs/sec (values
reconstructed from the garbled OCR; see DESIGN.md).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable
from repro.workloads.configs import (
    TABLE1_BASE_RATE,
    TABLE1_COUNTS,
    TABLE1_RELATIVE_RATES,
    table1_service_rates,
)

__all__ = ["run"]


def run() -> ExperimentTable:
    """Emit Table 1 exactly as the paper structures it (one row per type)."""
    rows = []
    for relative, count in zip(TABLE1_RELATIVE_RATES, TABLE1_COUNTS):
        rows.append(
            {
                "relative_processing_rate": relative,
                "number_of_computers": count,
                "processing_rate_jobs_per_sec": relative * TABLE1_BASE_RATE,
            }
        )
    rates = table1_service_rates()
    return ExperimentTable(
        experiment_id="T1",
        title="Table 1 — system configuration (16 computers, 4 types)",
        columns=(
            "relative_processing_rate",
            "number_of_computers",
            "processing_rate_jobs_per_sec",
        ),
        rows=tuple(rows),
        notes=(
            f"aggregate processing rate: {rates.sum():.0f} jobs/sec over "
            f"{rates.size} computers",
            "values reconstructed from legible fragments of the OCRed paper; "
            "see DESIGN.md for the provenance argument",
        ),
    )
