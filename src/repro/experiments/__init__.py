"""Experiment harness — one module per paper table/figure (see DESIGN.md).

=========  =================================================
Module                         Paper artifact
=========  =================================================
table1                Table 1 (system configuration)
fig2_convergence      Figure 2 (norm vs iterations)
fig3_users            Figure 3 (iterations vs #users)
fig4_utilization      Figure 4 (response time / fairness vs load)
fig5_per_user         Figure 5 (per-user response times)
fig6_heterogeneity    Figure 6 (speed skewness sweep)
sim_validation        Sec. 4.1 methodology (simulation vs analytic)
extensions            EXT1 (PoA, Stackelberg), ABL1/ABL2 ablations
ext_dynamics          EXT2 (dynamic dispatch), EXT3 (NBS), ABL3/ABL4
ext_models            EXT4 (comm delays), EXT5 (misspecification)
ext_deployment        EXT6 (measured closed loop), ABL5 (network faults)
ext_crash_recovery    EXT9 (protocol crash-fault tolerance)
ext_online            EXT10 (online engine: a day in production)
ext_sampled           EXT11 (power-of-k sampled best replies)
=========  =================================================
"""

from repro.experiments.ascii_plot import ascii_chart, sparkline
from repro.experiments.common import (
    SCHEME_ORDER,
    ExperimentTable,
    run_schemes,
    run_schemes_sweep,
)
from repro.experiments.parallel import parallel_map, run_experiments_parallel
from repro.experiments.report import generate_report, table_to_markdown
from repro.experiments.runner import (
    EXPERIMENTS,
    main,
    render_chart,
    run_experiment,
)

__all__ = [
    "ascii_chart",
    "sparkline",
    "parallel_map",
    "run_experiments_parallel",
    "generate_report",
    "table_to_markdown",
    "render_chart",
    "SCHEME_ORDER",
    "ExperimentTable",
    "run_schemes",
    "run_schemes_sweep",
    "EXPERIMENTS",
    "main",
    "run_experiment",
]
