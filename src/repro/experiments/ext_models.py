"""EXT4/EXT5 — model extensions: communication delays and misspecification.

* **EXT4 (communication delays)** — the game with per-computer shipping
  delays ``t_i`` (the authors' extended model).  As delays on the *fast*
  computers grow, the equilibrium pulls traffic back to nearby slow
  machines and the advantage over PS narrows — the locality/speed
  trade-off quantified.
* **EXT5 (service-time misspecification)** — the paper's users model
  computers as M/M/1 (scv = 1).  What happens when the real job-size
  distribution has a different squared coefficient of variation?  The
  NASH allocation is computed under the M/M/1 assumption and *simulated*
  against M/D/1, Erlang, exponential and hyperexponential services; the
  measured times follow Pollaczek-Khinchine, and the scheme *ordering*
  (NASH < PS) survives at every variability level.
* **EXT7 (bursty arrivals)** — the third broken assumption: users whose
  job generation is Markov-modulated (calm/burst phases) rather than
  Poisson, at the same *average* rates the allocation was optimized for.
  Unlike service-time misspecification (EXT5), burstiness *reverses* the
  scheme ordering at high burst ratios: the M/M/1-optimized NASH
  allocation runs the fast computers near saturation, so synchronized
  bursts momentarily overload them and queues explode, while the
  oblivious PS — equal utilization everywhere — keeps slack on every
  machine and rides the bursts out.  Mean-based optimality is *not*
  burst-robust; see the experiment notes for the mechanism.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.comm_delay import DelayedGame, DelayedNashSolver
from repro.core.strategy import StrategyProfile
from repro.experiments.common import ExperimentTable
from repro.queueing.mg1 import expected_response_time_mg1
from repro.schemes import NashScheme, ProportionalScheme
from repro.simengine.arrivals import MMPPArrivals, PoissonArrivals
from repro.simengine.fastpath import simulate_profile_fast_batch
from repro.simengine.service import from_scv
from repro.simengine.simulator import simulate_profile
from repro.tolerances import close
from repro.workloads.configs import paper_table1_system

__all__ = ["run_comm_delay", "run_misspecification", "run_bursty_arrivals"]


def run_comm_delay(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    delay_scales: Sequence[float] = (0.0, 0.01, 0.05, 0.1, 0.2),
) -> ExperimentTable:
    """EXT4: equilibrium cost as shipping delays to fast computers grow.

    Delay model: shipping to a computer costs ``scale * (mu_i / mu_min -
    1)`` seconds — fast computers are "far away" (they are the big shared
    machines), slow ones are local.  ``scale = 0`` recovers the paper's
    game.
    """
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    mu = system.service_rates
    distance = mu / mu.min() - 1.0
    solver = DelayedNashSolver(tolerance=1e-8)
    ps_profile = StrategyProfile.proportional(system)

    rows = []
    for scale in delay_scales:
        delays = float(scale) * distance
        game = DelayedGame(system, delays)
        result = solver.solve(game)
        if not result.converged:
            raise RuntimeError(f"delayed game did not converge at {scale}")
        fast_share = float(
            system.loads(result.profile.fractions)[distance > 0.0].sum()
            / system.total_arrival_rate
        )
        rows.append(
            {
                "delay_scale": float(scale),
                "nash_cost": float(
                    result.user_costs @ system.arrival_rates
                    / system.total_arrival_rate
                ),
                "ps_cost": game.overall_cost(ps_profile),
                "fast_computer_share": fast_share,
            }
        )
    return ExperimentTable(
        experiment_id="EXT4",
        title="Communication delays — the locality/speed trade-off",
        columns=("delay_scale", "nash_cost", "ps_cost", "fast_computer_share"),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, utilization {utilization:.0%}; shipping to "
            "computer i costs scale * (mu_i/mu_min - 1) seconds",
        ),
    )


def run_misspecification(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    scvs: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 4.0),
    horizon: float = 2000.0,
    warmup: float = 200.0,
    seed: int = 13,
) -> ExperimentTable:
    """EXT5: the M/M/1-optimized NASH allocation under M/G/1 reality."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    nash = NashScheme().allocate(system)
    ps = ProportionalScheme().allocate(system)
    nash_loads = system.loads(nash.profile.fractions)
    mu = system.service_rates

    rows = []
    for scv in scvs:
        distributions = [from_scv(float(rate), float(scv)) for rate in mu]
        # Both allocations in one batched pass under common random
        # numbers (same seed per row) — identical to two separate
        # simulate_profile_fast calls.
        nash_sim, ps_sim = simulate_profile_fast_batch(
            system,
            [nash.profile, ps.profile],
            horizon=horizon,
            warmup=warmup,
            seeds=[seed, seed],
            service_distributions=distributions,
        )
        # P-K prediction for the NASH loads under the true scv.
        used = nash_loads > 0.0
        pk_times = np.zeros_like(nash_loads)
        pk_times[used] = expected_response_time_mg1(
            nash_loads[used], mu[used], scv=float(scv)
        )
        pk_overall = float(
            (nash_loads[used] * pk_times[used]).sum()
            / system.total_arrival_rate
        )
        rows.append(
            {
                "scv": float(scv),
                "nash_simulated": nash_sim.overall_mean_response_time(),
                "nash_pk_predicted": pk_overall,
                "nash_mm1_model": nash.overall_time,
                "ps_simulated": ps_sim.overall_mean_response_time(),
            }
        )
    return ExperimentTable(
        experiment_id="EXT5",
        title="Service-time misspecification — M/M/1-optimized NASH on M/G/1",
        columns=(
            "scv",
            "nash_simulated",
            "nash_pk_predicted",
            "nash_mm1_model",
            "ps_simulated",
        ),
        rows=tuple(rows),
        notes=(
            "allocation fixed at the M/M/1 NASH equilibrium; reality's "
            "job-size scv swept via deterministic/Erlang/exponential/"
            "hyperexponential services; P-K = Pollaczek-Khinchine "
            "prediction at the same loads",
        ),
    )


def run_bursty_arrivals(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    burst_ratios: Sequence[float] = (1.0, 4.0, 10.0, 25.0),
    horizon: float = 400.0,
    warmup: float = 40.0,
    seed: int = 19,
) -> ExperimentTable:
    """EXT7: NASH and PS under Markov-modulated (bursty) job generation.

    Each user's source alternates calm/burst phases with mean sojourn
    2 s, with the burst rate ``ratio`` times the calm rate and the phase
    rates chosen so the *average* rate equals the user's ``phi_j`` (the
    rate the allocations were optimized for).  ``ratio = 1`` is exactly
    Poisson.

    Finding: NASH's advantage erodes and *reverses* as bursts grow.  At
    60% mean load the NASH equilibrium drives the fast machines to ~86%
    utilization; during a burst (aggregate demand ~96% of capacity) those
    machines are pushed past their service rate and queues build for the
    whole phase, whereas PS keeps every machine at the 60% mean with
    burst peaks still below saturation.
    """
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    nash = NashScheme().allocate(system)
    ps = ProportionalScheme().allocate(system)

    def sources(ratio: float):
        processes = []
        for phi in system.arrival_rates:
            if close(ratio, 1.0):
                processes.append(PoissonArrivals(float(phi)))
            else:
                # Equal phase sojourns: average = (calm + burst)/2 = phi.
                calm = 2.0 * float(phi) / (1.0 + ratio)
                processes.append(
                    MMPPArrivals(
                        calm,
                        ratio * calm,
                        calm_to_burst=0.5,
                        burst_to_calm=0.5,
                    )
                )
        return processes

    rows = []
    for ratio in burst_ratios:
        nash_sim = simulate_profile(
            system,
            nash.profile,
            horizon=horizon,
            warmup=warmup,
            seed=seed,
            arrival_processes=sources(float(ratio)),
        )
        ps_sim = simulate_profile(
            system,
            ps.profile,
            horizon=horizon,
            warmup=warmup,
            seed=seed,
            arrival_processes=sources(float(ratio)),
        )
        rows.append(
            {
                "burst_ratio": float(ratio),
                "nash_simulated": nash_sim.overall_mean_response_time(),
                "ps_simulated": ps_sim.overall_mean_response_time(),
                "nash_mm1_model": nash.overall_time,
            }
        )
    return ExperimentTable(
        experiment_id="EXT7",
        title="Bursty (MMPP) job generation — same mean rates, heavier tails",
        columns=(
            "burst_ratio",
            "nash_simulated",
            "ps_simulated",
            "nash_mm1_model",
        ),
        rows=tuple(rows),
        notes=(
            "2-state MMPP per user, equal 2 s phase sojourns, burst rate = "
            "ratio x calm rate, average pinned to the optimized phi_j; "
            "ratio 1 = Poisson",
            "mechanism: NASH runs fast machines near saturation, so "
            "synchronized bursts overload them; PS's uniform utilization "
            "keeps burst peaks below capacity",
        ),
    )
