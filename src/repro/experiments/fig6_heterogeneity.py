"""F6 — the paper's Figure 6 (effect of heterogeneity).

Sweeps the speed skewness (fast/slow service-rate ratio) of a 16-computer
system — 2 fast, 14 slow — from 1 (homogeneous) to 20 (highly
heterogeneous) at constant 60% utilization, reporting each scheme's
overall expected response time and fairness index.

Shape to reproduce (paper Sec. 4.2.3): with growing skewness NASH tracks
GOS almost exactly; IOS approaches them only at high skewness but is poor
at low skewness; PS is poor throughout because it overloads the slow
computers.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    SCHEME_ORDER,
    ExperimentTable,
    run_schemes_sweep,
)
from repro.workloads.sweeps import DEFAULT_SKEWNESSES, skewness_sweep

__all__ = ["run"]


def run(
    *,
    skewnesses: Sequence[float] = DEFAULT_SKEWNESSES,
    utilization: float = 0.6,
    n_users: int = 10,
    n_workers: int = 1,
    continuation: bool = False,
) -> ExperimentTable:
    """Overall response time and fairness per scheme across skewness values.

    ``n_workers > 1`` evaluates the sweep points over a process pool;
    ``continuation=True`` instead walks the skewnesses in order and
    warm-starts each NASH solve from the previous point's equilibrium
    (same certified equilibria, fewer best-reply sweeps — see
    docs/PERFORMANCE.md).
    """
    columns = ["skewness"]
    columns += [f"ert_{name.lower()}" for name in SCHEME_ORDER]
    columns += [f"fairness_{name.lower()}" for name in SCHEME_ORDER]
    rows = []
    sweep = run_schemes_sweep(
        skewness_sweep(skewnesses, utilization=utilization, n_users=n_users),
        n_workers=n_workers,
        continuation=continuation,
    )
    for skew, results in sweep:
        row: dict[str, object] = {"skewness": skew}
        for name in SCHEME_ORDER:
            row[f"ert_{name.lower()}"] = results[name].overall_time
            row[f"fairness_{name.lower()}"] = results[name].fairness
        rows.append(row)
    return ExperimentTable(
        experiment_id="F6",
        title="Figure 6 — effect of heterogeneity (speed skewness sweep)",
        columns=tuple(columns),
        rows=tuple(rows),
        notes=(
            "16 computers (2 fast, 14 slow), "
            f"{n_users} users, utilization {utilization:.0%}",
        ),
    )
