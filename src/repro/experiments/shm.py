"""Zero-copy shared-memory data plane for the process-pool layer.

Every :func:`~repro.experiments.parallel.parallel_map` task pickles its
whole payload through a pipe.  That is fine for sweep points measured in
kilobytes, but the production-scale paths ship the *same* large arrays
over and over: a sharded class solve re-sends the ``(c, n)`` class
matrices and the round's frozen fraction matrix to every shard task of
every reconciliation round, and a batched replication study re-sends the
system and profile arrays to every worker chunk.  At the ROADMAP's
``m = 10^6, n = 1024`` scale the coordinator spends more wall-clock
serializing than the workers spend solving — the comms-versus-compute
tradeoff quantified by Berenbrink et al. for distributed selfish load
balancing, showing up inside one machine.

This module removes the re-shipping:

* :class:`SharedArrayPlane` publishes read-only numpy arrays **once**
  into :mod:`multiprocessing.shared_memory` blocks.  Blocks are
  content-hash keyed (publishing equal bytes twice returns the same
  block — a cache hit, not a second copy), reference-counted by publish
  count, and guaranteed a ``close()``/``unlink()`` end of life through
  the context-manager protocol plus a module ``atexit`` sweep that
  reaps any plane a crashing caller left open.
* :class:`ArrayRef` is the picklable handle a task payload carries
  instead of the array: a few dozen bytes naming the block, dtype,
  shape and content token.
* :func:`resolve` rehydrates a handle inside a worker to a *read-only
  view* of the shared block — no copy, no deserialization — through a
  per-worker cache, so repeated tasks touching the same block attach
  exactly once (:func:`worker_cache_stats` exposes the hit count).
* :func:`rehydrate` memoizes worker-side *construction* on top of
  :func:`resolve`: reconstructing a validated object (a
  ``DistributedSystem``, a ``StrategyProfile``) from shared arrays is
  keyed by the content tokens, so repeated tasks pay the validation
  copy once per worker rather than once per task.

Degradation is graceful and explicit: when shared memory is unavailable
(platform without ``/dev/shm``, ``REPRO_SHM=0``) or an array is below
:data:`DEFAULT_MIN_BYTES` (block setup costs more than pickling small
arrays), :meth:`SharedArrayPlane.publish` returns the array itself and
the pickling path simply continues — callers treat
``ArrayRef | ndarray`` uniformly through :func:`resolve`.  Results are
bit-identical either way: a shared block carries the exact bytes of the
published array.

Telemetry (docs/OBSERVABILITY.md): the plane emits one
``pool.shm.publish`` event per new block and a ``pool.shm.close``
roll-up, and counts ``pool.shm.blocks`` / ``pool.shm.bytes_shared`` /
``pool.shm.bytes_saved`` / ``pool.shm.cache_hits`` /
``pool.shm.fallbacks`` on the ambient tracer; ``repro-trace summary``
shows the roll-up line.

The worker-side caches in this module are deliberately process-local
state (each worker keeps its own attachments), which is why this module
is listed in :data:`repro.analysis.project.AUDITED_STATE_MODULES` —
the same exemption the executor cache and ambient tracer stack carry.
Block *creation* discipline is enforced by repro-lint rule R011
(``shm-lifecycle``): outside this module every ``SharedMemory``
construction must pair ``close()`` (and ``unlink()`` for owners) on all
paths.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import weakref
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Hashable, Sequence, TypeVar

import numpy as np

# Imported for its side effect: parallel registers shutdown_pools with
# atexit at import time, so importing it *before* this module registers
# sweep_planes guarantees (LIFO) that blocks are unlinked while the
# executors are still draining — see sweep_planes.
import repro.experiments.parallel  # noqa: F401
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "DEFAULT_MIN_BYTES",
    "ArrayRef",
    "PlaneStats",
    "SharedArrayPlane",
    "clear_worker_cache",
    "rehydrate",
    "resolve",
    "shm_available",
    "sweep_planes",
    "worker_cache_stats",
]

C = TypeVar("C")

#: Arrays smaller than this are pickled inline: one shared block costs a
#: file descriptor, a page-aligned mapping and a name lookup in every
#: worker, which only pays off once the array outweighs its own pickle
#: by a comfortable margin (see docs/PERFORMANCE.md).
DEFAULT_MIN_BYTES = 1 << 15

#: Environment switch: ``REPRO_SHM=0`` disables the plane everywhere
#: (every publish falls back to inline pickling).  Mirrors ``REPRO_JIT``.
SHM_ENV_VAR = "REPRO_SHM"


def shm_available() -> bool:
    """Can this process create shared-memory blocks?

    False when the platform lacks ``multiprocessing.shared_memory``
    support or the :data:`SHM_ENV_VAR` kill switch is set to ``0``; the
    result of the platform probe is cached (the environment variable is
    re-read every call so tests can flip it).
    """
    if os.environ.get(SHM_ENV_VAR, "1") == "0":
        return False
    return _platform_probe()


_PROBE_RESULT: bool | None = None


def _platform_probe() -> bool:
    global _PROBE_RESULT
    if _PROBE_RESULT is None:
        try:
            from multiprocessing import shared_memory

            block = shared_memory.SharedMemory(create=True, size=1)
            block.close()
            block.unlink()
            _PROBE_RESULT = True
        except (ImportError, OSError):  # pragma: no cover - platform
            _PROBE_RESULT = False
    return _PROBE_RESULT


@dataclass(frozen=True)
class ArrayRef:
    """Picklable handle to a read-only array published in shared memory.

    ``token`` is the content hash the plane keyed the block by — it also
    keys the worker-side rehydration cache, so two refs to the same
    bytes (even from different planes) resolve to one attachment.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    nbytes: int
    token: str


@dataclass(frozen=True)
class PlaneStats:
    """Lifetime accounting of one :class:`SharedArrayPlane`."""

    blocks: int
    bytes_shared: int
    cache_hits: int
    fallbacks: int
    bytes_saved: int


class _Block:
    """One owned shared-memory block (name + publish refcount)."""

    __slots__ = ("shm", "ref", "publishes")

    def __init__(self, shm: Any, ref: ArrayRef):
        self.shm = shm
        self.ref = ref
        self.publishes = 1


class SharedArrayPlane:
    """Publish read-only numpy arrays once; hand out picklable handles.

    Parameters
    ----------
    min_bytes:
        Arrays below this size are returned as-is (inline pickling is
        cheaper than a block per small array).
    enabled:
        ``None`` (default) probes :func:`shm_available`; ``False`` turns
        every publish into a fallback — useful for apples-to-apples
        pickling baselines (the ``shm-plane`` benchmarks do exactly
        this).
    tracer:
        Telemetry destination; defaults to the ambient tracer.

    The plane owns every block it creates: leaving the ``with`` body (or
    calling :meth:`close`, or the module's ``atexit`` sweep) closes and
    unlinks all of them exactly once.  Publishing after close raises.
    """

    def __init__(
        self,
        *,
        min_bytes: int = DEFAULT_MIN_BYTES,
        enabled: bool | None = None,
        tracer: Tracer | None = None,
    ):
        if min_bytes < 0:
            raise ValueError("min_bytes must be nonnegative")
        self.min_bytes = int(min_bytes)
        self.enabled = shm_available() if enabled is None else bool(enabled)
        self._tracer = tracer
        self._blocks: dict[str, _Block] = {}
        self._closed = False
        self._blocks_total = 0
        self._bytes_shared_total = 0
        self._cache_hits = 0
        self._fallbacks = 0
        self._bytes_saved = 0
        _LIVE_PLANES[self] = None

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, array: np.ndarray) -> ArrayRef | np.ndarray:
        """Publish ``array`` and return its handle (or the array itself).

        The returned :class:`ArrayRef` is what the task payload should
        carry; workers turn it back into a read-only view with
        :func:`resolve`.  Publishing content already on the plane is a
        cache hit and returns the existing handle.  Arrays below
        ``min_bytes`` — and every array when the plane is disabled —
        fall back to the array itself (inline pickling), which
        :func:`resolve` passes through unchanged.
        """
        if self._closed:
            raise RuntimeError("publish() on a closed SharedArrayPlane")
        array = np.ascontiguousarray(array)
        if not self.enabled or array.nbytes < self.min_bytes:
            self._fallbacks += 1
            return array
        token = _content_token(array)
        block = self._blocks.get(token)
        if block is not None:
            block.publishes += 1
            self._cache_hits += 1
            self._bytes_saved += array.nbytes
            tracer = self._ambient()
            if tracer.enabled:
                tracer.count("pool.shm.cache_hits")
                tracer.count("pool.shm.bytes_saved", array.nbytes)
            return block.ref
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        ref = ArrayRef(
            name=shm.name,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
            nbytes=int(array.nbytes),
            token=token,
        )
        self._blocks[token] = _Block(shm, ref)
        self._blocks_total += 1
        self._bytes_shared_total += int(array.nbytes)
        tracer = self._ambient()
        if tracer.enabled:
            tracer.emit(
                "pool.shm.publish",
                block=shm.name,
                nbytes=int(array.nbytes),
                shape=list(array.shape),
                dtype=array.dtype.str,
            )
            tracer.count("pool.shm.blocks")
            tracer.count("pool.shm.bytes_shared", array.nbytes)
        return ref

    def account_fanout(
        self, handles: Sequence[ArrayRef | np.ndarray], n_tasks: int
    ) -> int:
        """Record that ``handles`` were broadcast to ``n_tasks`` tasks.

        Returns (and counts as ``pool.shm.bytes_saved``) the payload
        bytes the pickling path would have shipped for the *shared*
        handles: each of the ``n_tasks`` task pickles would have carried
        every array once.  Fallback entries (plain arrays) still ride
        the pickle and save nothing.
        """
        if n_tasks < 0:
            raise ValueError("n_tasks must be nonnegative")
        saved = sum(
            handle.nbytes for handle in handles if isinstance(handle, ArrayRef)
        ) * n_tasks
        if saved:
            self._bytes_saved += saved
            tracer = self._ambient()
            if tracer.enabled:
                tracer.count("pool.shm.bytes_saved", saved)
        return saved

    def release(self, handle: ArrayRef | np.ndarray) -> None:
        """Drop one publish of ``handle``; free the block at refcount 0.

        Round-scoped data (a sharded solve's per-round fraction matrix)
        is published, broadcast, and released so a long solve does not
        accrete one dead block per round.  Releasing a fallback array or
        an unknown/foreign handle is a no-op.
        """
        if not isinstance(handle, ArrayRef) or self._closed:
            return
        block = self._blocks.get(handle.token)
        if block is None:
            return
        block.publishes -= 1
        if block.publishes <= 0:
            del self._blocks[handle.token]
            _destroy_block(block.shm)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every owned block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        blocks = list(self._blocks.values())
        self._blocks.clear()
        stats = self.stats()
        for block in blocks:
            _destroy_block(block.shm)
        tracer = self._ambient()
        if tracer.enabled:
            tracer.emit(
                "pool.shm.close",
                blocks=stats.blocks,
                bytes_shared=stats.bytes_shared,
                bytes_saved=stats.bytes_saved,
                cache_hits=stats.cache_hits,
                fallbacks=stats.fallbacks,
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> PlaneStats:
        """Lifetime accounting (publishes survive release and close)."""
        return PlaneStats(
            blocks=self._blocks_total,
            bytes_shared=self._bytes_shared_total,
            cache_hits=self._cache_hits,
            fallbacks=self._fallbacks,
            bytes_saved=self._bytes_saved,
        )

    def __enter__(self) -> "SharedArrayPlane":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _ambient(self) -> Tracer:
        return self._tracer if self._tracer is not None else current_tracer()


def _content_token(array: np.ndarray) -> str:
    """Content hash keying a published array (bytes + shape + dtype)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(array.dtype.str).encode())
    digest.update(repr(array.shape).encode())
    digest.update(array.data.cast("B"))
    return digest.hexdigest()


def _destroy_block(shm: Any) -> None:
    """Best-effort close + unlink (never raises during teardown)."""
    try:
        shm.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - defensive
        pass


#: Every live plane, swept at interpreter exit so a caller that crashed
#: between publish and close still unlinks its blocks (the satellite
#: lifecycle tests treat resource_tracker warnings as failures).
_LIVE_PLANES: "weakref.WeakKeyDictionary[SharedArrayPlane, None]" = (
    weakref.WeakKeyDictionary()
)


def sweep_planes() -> int:
    """Close every plane still open; returns how many were swept.

    Registered via ``atexit``; safe to call eagerly from tests.  Runs
    *before* :func:`repro.experiments.parallel.shutdown_pools`'s own
    atexit hook (LIFO order: this module imports parallel's atexit
    registration first), so blocks are unlinked while the executors are
    still alive — the kernel keeps mappings valid until every attached
    worker detaches.
    """
    swept = 0
    for plane in list(_LIVE_PLANES):
        if not plane.closed:
            plane.close()
            swept += 1
    return swept


atexit.register(sweep_planes)


# ----------------------------------------------------------------------
# Worker side: rehydration
# ----------------------------------------------------------------------
#: Per-process attachment cache: content token -> (SharedMemory, view).
#: Keeping the SharedMemory object referenced keeps the mapping alive
#: for as long as views circulate.  Process-local by design (see the
#: module docstring's AUDITED_STATE_MODULES note).
_WORKER_CACHE: dict[str, tuple[Any, np.ndarray]] = {}
_WORKER_CACHE_HITS = [0]
_CONSTRUCTED: dict[tuple[Hashable, ...], Any] = {}


def resolve(handle: ArrayRef | np.ndarray) -> np.ndarray:
    """Turn a task-payload handle back into a read-only array.

    Plain arrays (the fallback path) pass through unchanged; an
    :class:`ArrayRef` attaches to its block and returns a zero-copy
    read-only view.  Attachments are cached per process and per content
    token, so every task after the first is a dictionary lookup.
    """
    if isinstance(handle, np.ndarray):
        return handle
    cached = _WORKER_CACHE.get(handle.token)
    if cached is not None:
        _WORKER_CACHE_HITS[0] += 1
        return cached[1]
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=handle.name)
    view: np.ndarray = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf
    )
    view.flags.writeable = False
    _WORKER_CACHE[handle.token] = (shm, view)
    return view


def rehydrate(
    factory: Callable[..., C],
    *handles: ArrayRef | np.ndarray,
    extra_key: tuple[Hashable, ...] = (),
) -> C:
    """Memoized worker-side construction from shared arrays.

    ``factory(*arrays)`` builds a (typically validating, copying) object
    from the resolved handles — e.g. ``DistributedSystem`` from rate
    vectors.  The result is cached per process, keyed by the factory and
    the handles' content tokens, so repeated tasks over the same blocks
    reuse one constructed object instead of re-validating per task.
    Calls involving any fallback (inline) array are not cached — plain
    arrays carry no stable content token.
    """
    if all(isinstance(handle, ArrayRef) for handle in handles):
        key: tuple[Hashable, ...] = (
            getattr(factory, "__module__", ""),
            getattr(factory, "__qualname__", repr(factory)),
            *(handle.token for handle in handles),  # type: ignore[union-attr]
            *extra_key,
        )
        cached = _CONSTRUCTED.get(key)
        if cached is not None:
            _WORKER_CACHE_HITS[0] += 1
            return cached  # type: ignore[no-any-return]
        constructed = factory(*(resolve(handle) for handle in handles))
        _CONSTRUCTED[key] = constructed
        return constructed
    return factory(*(resolve(handle) for handle in handles))


def worker_cache_stats() -> dict[str, int]:
    """Attachment/construction cache sizes and hits in *this* process."""
    return {
        "attached": len(_WORKER_CACHE),
        "constructed": len(_CONSTRUCTED),
        "hits": _WORKER_CACHE_HITS[0],
    }


def clear_worker_cache() -> None:
    """Drop this process's rehydration caches (tests / fork hygiene).

    Cached attachments are closed best-effort: a view still referenced
    elsewhere keeps its mapping alive until garbage collection, which is
    safe — blocks are unlinked by their owning plane, not here.
    """
    _CONSTRUCTED.clear()
    _WORKER_CACHE_HITS[0] = 0
    entries = list(_WORKER_CACHE.values())
    _WORKER_CACHE.clear()
    for shm, view in entries:
        del view
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - live views
            pass
