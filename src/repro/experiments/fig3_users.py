"""F3 — the paper's Figure 3 (iterations to equilibrium vs number of users).

Sweeps the user population of the Table-1 system from 4 to 32 users at a
constant total arrival rate, and counts the best-reply sweeps each
initialization needs to reach the acceptance tolerance.  The paper's
claim: NASH_P needs fewer iterations than NASH_0 at every population
size, and the iteration count grows with the number of users.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.classes import ClassNashSolver, aggregate_users
from repro.core.continuation import SweepPredictor
from repro.core.model import DistributedSystem
from repro.core.nash import Initialization, NashResult, NashSolver
from repro.core.strategy import StrategyProfile
from repro.experiments.common import ExperimentTable
from repro.experiments.parallel import parallel_map
from repro.workloads.sweeps import DEFAULT_USER_COUNTS, user_count_sweep

__all__ = ["run"]


def _solve_point(
    point: tuple[int, DistributedSystem, float, int],
) -> dict[str, object]:
    # Top-level function so sweep points pickle under the spawn method.
    m, system, tolerance, max_sweeps = point
    solver = NashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
    zero = solver.solve(system, "zero")
    prop = solver.solve(system, "proportional")
    if not (zero.converged and prop.converged):
        raise RuntimeError(f"best-reply iteration did not converge for m={m}")
    return {
        "users": m,
        "iterations_nash_0": zero.iterations,
        "iterations_nash_p": prop.iterations,
        "saving": 1.0 - prop.iterations / zero.iterations,
    }


def _solve_point_aggregate(
    point: tuple[int, DistributedSystem, float, int],
) -> dict[str, object]:
    # Class-space variant of _solve_point (top-level for pickling): the
    # sweep's identical-phi users collapse into one weighted class, so
    # population sizes far beyond the per-user path's memory wall run in
    # (c, n) state.  The user-weighted sweep norm makes the iteration
    # columns directly comparable with the per-user rows.
    m, system, tolerance, max_sweeps = point
    aggregation = aggregate_users(system)
    solver = ClassNashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
    zero = solver.solve(aggregation, "zero")
    prop = solver.solve(aggregation, "proportional")
    if not (zero.converged and prop.converged):
        raise RuntimeError(f"best-reply iteration did not converge for m={m}")
    return {
        "users": m,
        "iterations_nash_0": zero.iterations,
        "iterations_nash_p": prop.iterations,
        "saving": 1.0 - prop.iterations / zero.iterations,
    }


def _run_continuation(
    points: list[tuple[int, DistributedSystem, float, int]],
) -> list[dict[str, object]]:
    """Warm-started sweep: each population size continues the previous one.

    Both columns keep their cold-start *first* point; subsequent points
    are seeded with the preceding equilibrium re-spread over the new user
    count (the aggregate split carries over; see
    :mod:`repro.core.continuation`), so the iteration counts measure the
    continuation cost rather than the paper's cold-start cost.
    """
    rows: list[dict[str, object]] = []
    predictors: dict[str, SweepPredictor] = {
        "zero": SweepPredictor(),
        "prop": SweepPredictor(),
    }
    cold_inits: tuple[tuple[str, Initialization], ...] = (
        ("zero", "zero"),
        ("prop", "proportional"),
    )
    for m, system, tolerance, max_sweeps in points:
        solver = NashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
        results: dict[str, NashResult] = {}
        for column, cold_init in cold_inits:
            init: Initialization | StrategyProfile = cold_init
            warm = predictors[column].predict(m, system)
            if warm is not None:
                init = warm
            result = solver.solve(system, init)
            if not result.converged:
                raise RuntimeError(
                    f"best-reply iteration did not converge for m={m}"
                )
            predictors[column].record(m, result.profile, system)
            results[column] = result
        rows.append(
            {
                "users": m,
                "iterations_nash_0": results["zero"].iterations,
                "iterations_nash_p": results["prop"].iterations,
                "saving": 1.0
                - results["prop"].iterations / results["zero"].iterations,
            }
        )
    return rows


def run(
    *,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    utilization: float = 0.6,
    tolerance: float = 1e-4,
    max_sweeps: int = 2000,
    n_workers: int = 1,
    continuation: bool = False,
    aggregate: bool = False,
) -> ExperimentTable:
    """Iterations to convergence per user count, for both initializations.

    ``n_workers > 1`` evaluates the sweep points over a process pool.
    ``continuation=True`` warm-starts each population size from the
    previous one's equilibrium — note this *changes the meaning* of the
    iteration columns (continuation cost, not the paper's cold-start
    cost), which is why the figure defaults to cold starts.
    ``aggregate=True`` solves each point in user-class space
    (:mod:`repro.core.classes`) — identical iteration semantics on the
    figure's sizes, and the only way to extend the sweep to ``m`` in the
    millions, where the per-user ``(m, n)`` profile no longer fits.
    """
    points = [
        (m, system, tolerance, max_sweeps)
        for m, system in user_count_sweep(user_counts, utilization=utilization)
    ]
    if continuation:
        if n_workers != 1:
            raise ValueError(
                "continuation sweeps are sequential; use n_workers=1"
            )
        if aggregate:
            raise ValueError(
                "continuation and aggregate modes are mutually exclusive"
            )
        rows = _run_continuation(points)
    else:
        solve = _solve_point_aggregate if aggregate else _solve_point
        rows = parallel_map(solve, points, n_workers=n_workers)
    notes = [
        f"Table-1 computers, utilization {utilization:.0%}, "
        f"tolerance {tolerance:g}",
    ]
    if aggregate:
        notes.append(
            "aggregate mode: points solved in user-class space "
            "(identical-rate users share one weighted class)"
        )
    if continuation:
        notes.append(
            "continuation mode: points after the first are warm-started "
            "from the previous population's equilibrium, so iteration "
            "counts measure continuation cost, not cold-start cost"
        )
    return ExperimentTable(
        experiment_id="F3",
        title="Figure 3 — iterations to equilibrium vs number of users",
        columns=("users", "iterations_nash_0", "iterations_nash_p", "saving"),
        rows=tuple(rows),
        notes=tuple(notes),
    )
