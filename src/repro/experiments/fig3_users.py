"""F3 — the paper's Figure 3 (iterations to equilibrium vs number of users).

Sweeps the user population of the Table-1 system from 4 to 32 users at a
constant total arrival rate, and counts the best-reply sweeps each
initialization needs to reach the acceptance tolerance.  The paper's
claim: NASH_P needs fewer iterations than NASH_0 at every population
size, and the iteration count grows with the number of users.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver
from repro.experiments.common import ExperimentTable
from repro.experiments.parallel import parallel_map
from repro.workloads.sweeps import DEFAULT_USER_COUNTS, user_count_sweep

__all__ = ["run"]


def _solve_point(
    point: tuple[int, DistributedSystem, float, int],
) -> dict[str, object]:
    # Top-level function so sweep points pickle under the spawn method.
    m, system, tolerance, max_sweeps = point
    solver = NashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
    zero = solver.solve(system, "zero")
    prop = solver.solve(system, "proportional")
    if not (zero.converged and prop.converged):
        raise RuntimeError(f"best-reply iteration did not converge for m={m}")
    return {
        "users": m,
        "iterations_nash_0": zero.iterations,
        "iterations_nash_p": prop.iterations,
        "saving": 1.0 - prop.iterations / zero.iterations,
    }


def run(
    *,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    utilization: float = 0.6,
    tolerance: float = 1e-4,
    max_sweeps: int = 2000,
    n_workers: int = 1,
) -> ExperimentTable:
    """Iterations to convergence per user count, for both initializations.

    ``n_workers > 1`` evaluates the sweep points over a process pool.
    """
    points = [
        (m, system, tolerance, max_sweeps)
        for m, system in user_count_sweep(user_counts, utilization=utilization)
    ]
    rows = parallel_map(_solve_point, points, n_workers=n_workers)
    return ExperimentTable(
        experiment_id="F3",
        title="Figure 3 — iterations to equilibrium vs number of users",
        columns=("users", "iterations_nash_0", "iterations_nash_p", "saving"),
        rows=tuple(rows),
        notes=(
            f"Table-1 computers, utilization {utilization:.0%}, "
            f"tolerance {tolerance:g}",
        ),
    )
