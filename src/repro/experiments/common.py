"""Shared infrastructure of the experiment harness.

Every experiment module regenerates one of the paper's tables or figures
as an :class:`ExperimentTable` — named columns, one row per x-axis point —
which renders to an aligned ASCII table (what the benchmark harness
prints) and to CSV (for external plotting).
"""

from __future__ import annotations

import csv
import dataclasses
import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.continuation import SweepPredictor
from repro.core.model import DistributedSystem
from repro.experiments.parallel import parallel_map
from repro.experiments.shm import (
    ArrayRef,
    SharedArrayPlane,
    rehydrate,
    resolve,
    shm_available,
)
from repro.schemes import NashScheme, standard_schemes
from repro.schemes.base import LoadBalancingScheme, SchemeResult
from repro.telemetry.trace import current_tracer

__all__ = [
    "ExperimentTable",
    "run_schemes",
    "run_schemes_sweep",
    "SCHEME_ORDER",
]

#: Scheme identifiers in the paper's presentation order.
SCHEME_ORDER: tuple[str, ...] = ("NASH", "GOS", "IOS", "PS")


@dataclass(frozen=True)
class ExperimentTable:
    """One reproduced artifact (a paper table or figure's data).

    Attributes
    ----------
    experiment_id:
        Short id from DESIGN.md's experiment index ("F4", "T1", ...).
    title:
        Human-readable description including the paper artifact.
    columns:
        Ordered column names.
    rows:
        One mapping per data point; keys must be a subset of ``columns``.
    notes:
        Free-form provenance notes (parameters, substitutions).
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping[str, Any], ...]
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        for row in self.rows:
            unknown = set(row) - set(self.columns)
            if unknown:
                raise ValueError(f"row has unknown columns: {sorted(unknown)}")

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _formatted_cells(self) -> list[list[str]]:
        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.5g}"
            return str(value)

        return [[fmt(row.get(col)) for col in self.columns] for row in self.rows]

    def to_ascii(self) -> str:
        """Aligned, human-readable table (the benches print this)."""
        cells = self._formatted_cells()
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV text with a header row."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow({col: row.get(col, "") for col in self.columns})
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


def run_schemes(
    system: DistributedSystem,
    schemes: Sequence[LoadBalancingScheme] | None = None,
) -> dict[str, SchemeResult]:
    """Allocate with every scheme, keyed by scheme name.

    Defaults to the paper's four schemes (NASH, GOS, IOS, PS).
    """
    chosen = tuple(schemes) if schemes is not None else standard_schemes()
    results: dict[str, SchemeResult] = {}
    for scheme in chosen:
        result = scheme.allocate(system)
        if result.scheme in results:
            raise ValueError(f"duplicate scheme name {result.scheme!r}")
        results[result.scheme] = result
    return results


def _solve_sweep_point(
    point: tuple[Any, DistributedSystem, tuple[LoadBalancingScheme, ...] | None],
) -> tuple[Any, dict[str, SchemeResult]]:
    # Top-level function so sweep points pickle under the spawn method.
    parameter, system, schemes = point
    return parameter, run_schemes(system, schemes)


def _system_from_rates(
    mu: "Any", phi: "Any"
) -> DistributedSystem:
    # Factory for rehydrate(): validated once per worker per content.
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


#: Zero-copy sweep point: the system travels as two shared-array handles
#: (rates dedupe across points — a sweep typically varies only one of
#: them) plus its names when — and only when — they are custom; default
#: names are regenerated worker-side for free.
ShmSweepPoint = tuple[
    Any,
    "ArrayRef | Any",
    "ArrayRef | Any",
    tuple[tuple[str, ...], tuple[str, ...]] | None,
    "tuple[LoadBalancingScheme, ...] | None",
]


def _solve_sweep_point_shm(
    point: ShmSweepPoint,
) -> tuple[Any, dict[str, SchemeResult]]:
    """Zero-copy twin of :func:`_solve_sweep_point` (pool worker).

    Rebuilds the :class:`DistributedSystem` from shared rate arrays; the
    construction (validation copies, default-name generation) is
    memoized per worker by content token, so every sweep point after the
    first against the same system is pure solve time.
    """
    parameter, mu_handle, phi_handle, names, schemes = point
    if names is None:
        system = rehydrate(_system_from_rates, mu_handle, phi_handle)
    else:
        system = DistributedSystem(
            service_rates=resolve(mu_handle),
            arrival_rates=resolve(phi_handle),
            computer_names=names[0],
            user_names=names[1],
        )
    return parameter, run_schemes(system, schemes)


def _sweep_axis_order(points: Sequence[tuple[Any, DistributedSystem]]) -> list[int]:
    """Point indices ordered along the sweep axis (input order fallback)."""
    try:
        return sorted(range(len(points)), key=lambda i: points[i][0])
    except TypeError:
        return list(range(len(points)))


def _run_sweep_continuation(
    points: Sequence[tuple[Any, DistributedSystem]],
    chosen: tuple[LoadBalancingScheme, ...] | None,
) -> list[tuple[Any, dict[str, SchemeResult]]]:
    """Solve the sweep serially, warm-starting each NASH solve.

    Points are visited in sweep-axis order; each :class:`NashScheme` in
    the scheme set is seeded with its previous point's equilibrium
    (adapted via :func:`repro.core.continuation.warm_start_profile`),
    falling back to the scheme's cold init when no usable warm start
    exists.  Results come back in the *input* point order.
    """
    scheme_set = chosen if chosen is not None else standard_schemes()
    predictors: dict[str, SweepPredictor] = {}
    solved: dict[int, tuple[Any, dict[str, SchemeResult]]] = {}
    for index in _sweep_axis_order(points):
        parameter, system = points[index]
        results: dict[str, SchemeResult] = {}
        for scheme in scheme_set:
            point_scheme = scheme
            warmed = False
            if isinstance(scheme, NashScheme):
                predictor = predictors.setdefault(
                    scheme.name, SweepPredictor()
                )
                warm = predictor.predict(parameter, system)
                if warm is not None:
                    point_scheme = scheme.warm_started(warm)
                    warmed = True
            result = point_scheme.allocate(system)
            if result.scheme in results:
                raise ValueError(f"duplicate scheme name {result.scheme!r}")
            if isinstance(scheme, NashScheme):
                result = dataclasses.replace(
                    result,
                    extra={**result.extra, "warm_started": warmed},
                )
                predictors[scheme.name].record(
                    parameter, result.profile, system
                )
            results[result.scheme] = result
        solved[index] = (parameter, results)
    return [solved[index] for index in range(len(points))]


def _emit_sweep_telemetry(
    sweep: Sequence[tuple[Any, dict[str, SchemeResult]]], *, continuation: bool
) -> None:
    """One ``sweep.point`` event per (point, scheme) on the ambient tracer.

    Emitted post-hoc in the calling process so both the serial and the
    process-pool sweep paths show up in ``repro-trace summary``.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return
    for parameter, results in sweep:
        for name, result in results.items():
            iterations = result.extra.get("iterations")
            tracer.emit(
                "sweep.point",
                parameter=parameter,
                scheme=name,
                iterations=None if iterations is None else int(iterations),
                warm_started=bool(result.extra.get("warm_started", False)),
                continuation=continuation,
                overall_time=float(result.overall_time),
            )
            tracer.count("sweep.points")


def run_schemes_sweep(
    points: Iterable[tuple[Any, DistributedSystem]],
    schemes: Sequence[LoadBalancingScheme] | None = None,
    *,
    n_workers: int = 1,
    chunksize: int | None = None,
    context: str | None = None,
    use_shm: bool | None = None,
    continuation: bool = False,
) -> list[tuple[Any, dict[str, SchemeResult]]]:
    """Evaluate every scheme at every sweep point, optionally in parallel.

    ``points`` is a ``(parameter, system)`` iterable — typically
    :func:`repro.workloads.sweeps.sweep_points` — and the result keeps its
    order: one ``(parameter, {scheme_name: SchemeResult})`` pair per
    point.  ``n_workers > 1`` fans the points out over a process pool via
    :func:`repro.experiments.parallel.parallel_map` (systems and schemes
    are frozen dataclasses, hence picklable); the default stays serial so
    small sweeps and doctests avoid pool startup costs.

    ``continuation=True`` visits the points in sweep-axis order and
    warm-starts every NASH solve from the previous point's equilibrium
    (see :mod:`repro.core.continuation` and docs/PERFORMANCE.md) — same
    equilibria to the same certified tolerance, far fewer best-reply
    sweeps.  Continuation is inherently sequential, so it cannot be
    combined with ``n_workers > 1``.

    ``use_shm`` routes the system arrays through the zero-copy data
    plane (:mod:`repro.experiments.shm`): each point's rate vectors are
    published to shared memory (deduped by content — a utilization sweep
    re-publishes the same ``mu`` once) and workers rebuild the systems
    from read-only views, with per-worker construction memoization.
    ``None`` (default) engages the plane exactly when the sweep fans out
    over a pool; results are bit-identical either way.  ``context`` pins
    the pool's start method (see
    :func:`repro.experiments.parallel.parallel_map`).

    Each solved point is recorded on the ambient telemetry tracer as a
    ``sweep.point`` event (``repro-trace summary`` shows the roll-up).
    """
    chosen = tuple(schemes) if schemes is not None else None
    point_list = list(points)
    if continuation:
        if n_workers != 1:
            raise ValueError(
                "continuation sweeps are sequential; use n_workers=1"
            )
        sweep = _run_sweep_continuation(point_list, chosen)
    else:
        if use_shm is None:
            use_shm = (
                shm_available() and n_workers > 1 and len(point_list) > 1
            )
        if use_shm:
            with SharedArrayPlane() as plane:
                shm_work: list[ShmSweepPoint] = []
                for parameter, system in point_list:
                    defaults = system.has_default_names
                    names = (
                        None
                        if defaults[0] and defaults[1]
                        else (system.computer_names, system.user_names)
                    )
                    shm_work.append(
                        (
                            parameter,
                            plane.publish(system.service_rates),
                            plane.publish(system.arrival_rates),
                            names,
                            chosen,
                        )
                    )
                sweep = parallel_map(
                    _solve_sweep_point_shm,
                    shm_work,
                    n_workers=n_workers,
                    chunksize=chunksize,
                    context=context,
                )
        else:
            work = [
                (parameter, system, chosen) for parameter, system in point_list
            ]
            sweep = parallel_map(
                _solve_sweep_point,
                work,
                n_workers=n_workers,
                chunksize=chunksize,
                context=context,
            )
    _emit_sweep_telemetry(sweep, continuation=continuation)
    return sweep
