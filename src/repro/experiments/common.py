"""Shared infrastructure of the experiment harness.

Every experiment module regenerates one of the paper's tables or figures
as an :class:`ExperimentTable` — named columns, one row per x-axis point —
which renders to an aligned ASCII table (what the benchmark harness
prints) and to CSV (for external plotting).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.core.model import DistributedSystem
from repro.experiments.parallel import parallel_map
from repro.schemes import standard_schemes
from repro.schemes.base import LoadBalancingScheme, SchemeResult

__all__ = [
    "ExperimentTable",
    "run_schemes",
    "run_schemes_sweep",
    "SCHEME_ORDER",
]

#: Scheme identifiers in the paper's presentation order.
SCHEME_ORDER: tuple[str, ...] = ("NASH", "GOS", "IOS", "PS")


@dataclass(frozen=True)
class ExperimentTable:
    """One reproduced artifact (a paper table or figure's data).

    Attributes
    ----------
    experiment_id:
        Short id from DESIGN.md's experiment index ("F4", "T1", ...).
    title:
        Human-readable description including the paper artifact.
    columns:
        Ordered column names.
    rows:
        One mapping per data point; keys must be a subset of ``columns``.
    notes:
        Free-form provenance notes (parameters, substitutions).
    """

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping[str, Any], ...]
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        for row in self.rows:
            unknown = set(row) - set(self.columns)
            if unknown:
                raise ValueError(f"row has unknown columns: {sorted(unknown)}")

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _formatted_cells(self) -> list[list[str]]:
        def fmt(value: Any) -> str:
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.5g}"
            return str(value)

        return [[fmt(row.get(col)) for col in self.columns] for row in self.rows]

    def to_ascii(self) -> str:
        """Aligned, human-readable table (the benches print this)."""
        cells = self._formatted_cells()
        widths = [
            max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = "  ".join(col.ljust(w) for col, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV text with a header row."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns))
        writer.writeheader()
        for row in self.rows:
            writer.writerow({col: row.get(col, "") for col in self.columns})
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


def run_schemes(
    system: DistributedSystem,
    schemes: Sequence[LoadBalancingScheme] | None = None,
) -> dict[str, SchemeResult]:
    """Allocate with every scheme, keyed by scheme name.

    Defaults to the paper's four schemes (NASH, GOS, IOS, PS).
    """
    chosen = tuple(schemes) if schemes is not None else standard_schemes()
    results: dict[str, SchemeResult] = {}
    for scheme in chosen:
        result = scheme.allocate(system)
        if result.scheme in results:
            raise ValueError(f"duplicate scheme name {result.scheme!r}")
        results[result.scheme] = result
    return results


def _solve_sweep_point(
    point: tuple[Any, DistributedSystem, tuple[LoadBalancingScheme, ...] | None],
) -> tuple[Any, dict[str, SchemeResult]]:
    # Top-level function so sweep points pickle under the spawn method.
    parameter, system, schemes = point
    return parameter, run_schemes(system, schemes)


def run_schemes_sweep(
    points: Iterable[tuple[Any, DistributedSystem]],
    schemes: Sequence[LoadBalancingScheme] | None = None,
    *,
    n_workers: int = 1,
    chunksize: int | None = None,
) -> list[tuple[Any, dict[str, SchemeResult]]]:
    """Evaluate every scheme at every sweep point, optionally in parallel.

    ``points`` is a ``(parameter, system)`` iterable — typically
    :func:`repro.workloads.sweeps.sweep_points` — and the result keeps its
    order: one ``(parameter, {scheme_name: SchemeResult})`` pair per
    point.  ``n_workers > 1`` fans the points out over a process pool via
    :func:`repro.experiments.parallel.parallel_map` (systems and schemes
    are frozen dataclasses, hence picklable); the default stays serial so
    small sweeps and doctests avoid pool startup costs.
    """
    chosen = tuple(schemes) if schemes is not None else None
    work = [(parameter, system, chosen) for parameter, system in points]
    return parallel_map(
        _solve_sweep_point, work, n_workers=n_workers, chunksize=chunksize
    )
