"""Parallel batched replication studies over the zero-copy data plane.

:func:`repro.simengine.fastpath.simulate_profile_fast_batch` already
collapses a replication study into a handful of vectorized passes, but a
single process still executes them.  This module fans the replications
out over the experiment process pool *without* re-pickling the heavy
inputs per task: the coordinator pre-draws the entire uniform demand
block once (:func:`~repro.simengine.fastpath.predraw_uniform_pool`),
publishes it — together with the system's rate vectors and the profile's
fraction matrix — to the shared-memory plane
(:mod:`repro.experiments.shm`), and each worker simulates a contiguous
slice of the replications against read-only views of those blocks.

Bit-identity is compositional: a run's samples never depend on which
other runs share a batch (the fastpath's documented slot-layout
property), and a pre-drawn pool row reproduces exactly the draws the
run would have made itself — so any chunking of the seed list yields
the same :class:`~repro.simengine.simulator.SimulationResult` list as
one serial batch, pinned by the parity tests.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.experiments.parallel import default_workers, parallel_map
from repro.experiments.shm import (
    ArrayRef,
    SharedArrayPlane,
    rehydrate,
    resolve,
    shm_available,
)
from repro.simengine.fastpath import (
    predraw_uniform_pool,
    simulate_profile_fast_batch,
)
from repro.simengine.simulator import SimulationResult

__all__ = ["simulate_batch_parallel"]

#: One worker task: its seed slice bounds, the slice's seeds, shared
#: handles for (mu, phi, fractions, uniform pool), custom names when the
#: system has any, and the scalar run configuration.
ReplicationChunk = tuple[
    int,
    int,
    "Sequence[int | np.random.SeedSequence]",
    "ArrayRef | np.ndarray",
    "ArrayRef | np.ndarray",
    "ArrayRef | np.ndarray",
    "ArrayRef | np.ndarray",
    tuple[tuple[str, ...], tuple[str, ...]] | None,
    float,
    float,
    Any,
]


def _rebuild_study(
    mu: np.ndarray, phi: np.ndarray, fractions: np.ndarray
) -> tuple[DistributedSystem, StrategyProfile]:
    # rehydrate() factory: validated once per worker per content token.
    return (
        DistributedSystem(service_rates=mu, arrival_rates=phi),
        StrategyProfile(fractions),
    )


def _simulate_chunk(chunk: ReplicationChunk) -> list[SimulationResult]:
    """Simulate one contiguous slice of the replications (pool worker)."""
    (
        start,
        stop,
        seeds,
        mu_handle,
        phi_handle,
        fractions_handle,
        pool_handle,
        names,
        horizon,
        warmup,
        service_distributions,
    ) = chunk
    if names is None:
        system, profile = rehydrate(
            _rebuild_study, mu_handle, phi_handle, fractions_handle
        )
    else:
        system = DistributedSystem(
            service_rates=resolve(mu_handle),
            arrival_rates=resolve(phi_handle),
            computer_names=names[0],
            user_names=names[1],
        )
        profile = StrategyProfile(resolve(fractions_handle))
    # Row slices of the shared pool are zero-copy views; each run reads
    # only its own row, so the slice is exactly the block a chunk-local
    # predraw would have produced.
    pool = resolve(pool_handle)[start:stop]
    return simulate_profile_fast_batch(
        system,
        profile,
        horizon=horizon,
        warmup=warmup,
        seeds=list(seeds),
        service_distributions=service_distributions,
        uniform_pool=pool,
    )


def _chunk_bounds(n_runs: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` ranges covering the runs."""
    n_chunks = max(1, min(n_chunks, n_runs))
    base, remainder = divmod(n_runs, n_chunks)
    bounds = []
    start = 0
    for index in range(n_chunks):
        stop = start + base + (1 if index < remainder else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def simulate_batch_parallel(
    system: DistributedSystem,
    profile: StrategyProfile,
    *,
    horizon: float,
    warmup: float = 0.0,
    seeds: Sequence[int | np.random.SeedSequence],
    n_workers: int | None = None,
    context: str | None = None,
    use_shm: bool | None = None,
    service_distributions: Any = None,
) -> list[SimulationResult]:
    """Fan a replication study out over the process pool, zero-copy.

    Semantically identical to
    ``simulate_profile_fast_batch(system, profile, ..., seeds=seeds)``
    — same results in the same order, bit for bit — with the
    replications split into one contiguous chunk per worker.  The
    uniform demand block is drawn once here and shared through the
    zero-copy plane, so worker payloads carry only seed objects and
    scalars.

    ``n_workers=1`` (or a single seed) stays serial with no plane and no
    pool.  ``use_shm=False`` keeps the fan-out but ships the pre-drawn
    pool and arrays by pickle — the apples-to-apples baseline the
    ``shm-plane`` benchmarks measure.  ``context`` pins the pool's start
    method (see :func:`repro.experiments.parallel.parallel_map`).
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("seeds must be nonempty")
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if n_workers == 1 or len(seeds) == 1:
        return simulate_profile_fast_batch(
            system,
            profile,
            horizon=horizon,
            warmup=warmup,
            seeds=seeds,
            service_distributions=service_distributions,
        )
    if use_shm is None:
        use_shm = shm_available()
    pool = predraw_uniform_pool(
        system,
        profile,
        horizon=horizon,
        seeds=seeds,
        service_distributions=service_distributions,
    )
    defaults = system.has_default_names
    names = (
        None
        if defaults[0] and defaults[1]
        else (system.computer_names, system.user_names)
    )
    bounds = _chunk_bounds(len(seeds), n_workers)
    with SharedArrayPlane(enabled=use_shm) as plane:
        handles = (
            plane.publish(system.service_rates),
            plane.publish(system.arrival_rates),
            plane.publish(profile.fractions),
            plane.publish(pool),
        )
        plane.account_fanout(handles, len(bounds))
        chunks: list[ReplicationChunk] = [
            (
                start,
                stop,
                seeds[start:stop],
                *handles,
                names,
                horizon,
                warmup,
                service_distributions,
            )
            for start, stop in bounds
        ]
        per_chunk = parallel_map(
            _simulate_chunk,
            chunks,
            n_workers=n_workers,
            chunksize=1,
            context=context,
        )
    return [result for chunk_results in per_chunk for result in chunk_results]
