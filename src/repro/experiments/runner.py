"""Command-line entry point regenerating every paper artifact.

``repro-experiments``            — run everything, print ASCII tables.
``repro-experiments f4 f6``      — run a subset by experiment id.
``repro-experiments all --csv out/`` — also write one CSV per artifact.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable

from repro.experiments import (
    ext_crash_recovery,
    ext_deployment,
    ext_dynamics,
    ext_mechanism,
    ext_models,
    ext_online,
    ext_sampled,
    extensions,
    fig2_convergence,
    fig3_users,
    fig4_utilization,
    fig5_per_user,
    fig6_heterogeneity,
    sim_validation,
    table1,
)
from repro.experiments.ascii_plot import ascii_chart
from repro.experiments.common import ExperimentTable
from repro.telemetry.trace import trace_to_file, use_tracer

__all__ = ["EXPERIMENTS", "run_experiment", "render_chart", "main"]

#: Experiment id -> zero-argument callable producing the artifact.
EXPERIMENTS: dict[str, Callable[[], ExperimentTable]] = {
    "t1": table1.run,
    "f2": fig2_convergence.run,
    "f3": fig3_users.run,
    "f4": fig4_utilization.run,
    "f5": fig5_per_user.run,
    "f6": fig6_heterogeneity.run,
    "sim": sim_validation.run,
    "ext1a": extensions.run_price_of_anarchy,
    "ext1b": extensions.run_stackelberg,
    "abl1": extensions.run_driver_ablation,
    "abl2": extensions.run_gos_split_ablation,
    "abl3": ext_dynamics.run_update_order_ablation,
    "abl4": ext_dynamics.run_noise_ablation,
    "ext2": ext_dynamics.run_dynamic_policies,
    "ext3": ext_dynamics.run_cooperative,
    "ext4": ext_models.run_comm_delay,
    "ext5": ext_models.run_misspecification,
    "ext6": ext_deployment.run_measured_loop,
    "ext7": ext_models.run_bursty_arrivals,
    "ext8": ext_mechanism.run_mechanism_frugality,
    "abl5": ext_deployment.run_fault_tolerance,
    "ext9": ext_crash_recovery.run_crash_recovery,
    "ext10": ext_online.run_online_service,
    "ext11": ext_sampled.run_sampled_information,
}


#: Chart recipes per experiment id; figures with two panels in the paper
#: (response time + fairness) get two recipes, rendered in order.
#: Each recipe: (x column, y columns, log y, y-axis label).
_Recipe = tuple[str, tuple[str, ...], bool, str]
_CHARTS: dict[str, tuple[_Recipe, ...]] = {
    "f2": (
        ("iteration", ("norm_nash_0", "norm_nash_p"), True, "norm"),
    ),
    "f3": (
        (
            "users",
            ("iterations_nash_0", "iterations_nash_p"),
            False,
            "iterations",
        ),
    ),
    "f4": (
        (
            "utilization",
            ("ert_nash", "ert_gos", "ert_ios", "ert_ps"),
            False,
            "expected response time (s)",
        ),
        (
            "utilization",
            (
                "fairness_nash",
                "fairness_gos",
                "fairness_ios",
                "fairness_ps",
            ),
            False,
            "fairness index",
        ),
    ),
    "f6": (
        (
            "skewness",
            ("ert_nash", "ert_gos", "ert_ios", "ert_ps"),
            False,
            "expected response time (s)",
        ),
        (
            "skewness",
            (
                "fairness_nash",
                "fairness_gos",
                "fairness_ios",
                "fairness_ps",
            ),
            False,
            "fairness index",
        ),
    ),
    "ext1a": (
        ("utilization", ("price_of_anarchy",), False, "PoA"),
    ),
    "abl4": (
        (
            "noise",
            ("final_regret_raw", "final_regret_smoothed"),
            True,
            "regret (s)",
        ),
    ),
}


def render_chart(experiment_id: str, table: ExperimentTable) -> str | None:
    """ASCII chart(s) for experiments whose figure has line-plot form.

    Two-panel paper figures (response time + fairness) render as two
    stacked charts, separated by a blank line.
    """
    recipes = _CHARTS.get(experiment_id.lower())
    if recipes is None:
        return None
    panels = []
    for x_col, y_cols, logy, y_label in recipes:
        series = {col: table.column(col) for col in y_cols}
        try:
            panels.append(
                ascii_chart(
                    table.column(x_col),
                    series,
                    logy=logy,
                    x_label=x_col,
                    y_label=y_label,
                )
            )
        except ValueError:
            continue
    if not panels:
        return None
    return "\n\n".join(panels)


def run_experiment(experiment_id: str) -> ExperimentTable:
    """Run one experiment by its (case-insensitive) id."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (default: all); known: "
        + ", ".join(sorted(EXPERIMENTS)),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write <DIR>/<id>.csv per experiment",
    )
    parser.add_argument(
        "--no-charts",
        action="store_true",
        help="suppress the ASCII charts under figure tables",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="write <DIR>/<id>.trace.jsonl telemetry per experiment "
        "(inspect with repro-trace; see docs/OBSERVABILITY.md)",
    )
    args = parser.parse_args(argv)

    chosen = args.experiments
    if chosen == ["all"] or chosen == []:
        chosen = sorted(EXPERIMENTS)
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
    try:
        tables = []
        for experiment_id in chosen:
            started = time.perf_counter()
            if args.trace:
                trace_path = os.path.join(
                    args.trace, f"{experiment_id.lower()}.trace.jsonl"
                )
                with trace_to_file(trace_path) as tracer, use_tracer(tracer):
                    table = run_experiment(experiment_id)
            else:
                table = run_experiment(experiment_id)
            elapsed = time.perf_counter() - started
            tables.append((experiment_id, table, elapsed))
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2

    for experiment_id, table, elapsed in tables:
        print(table.to_ascii())
        if not args.no_charts:
            chart = render_chart(experiment_id, table)
            if chart is not None:
                print()
                print(chart)
        print(f"({experiment_id} regenerated in {elapsed:.2f}s)")
        print()
        if args.csv:
            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{experiment_id.lower()}.csv")
            table.save_csv(path)
            print(f"wrote {path}")
        if args.trace:
            print(
                "wrote "
                + os.path.join(
                    args.trace, f"{experiment_id.lower()}.trace.jsonl"
                )
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
