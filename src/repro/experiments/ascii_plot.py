"""Terminal plotting for the experiment harness.

The paper's figures are line plots; this reproduction runs in terminals
and CI, so the runner renders each figure's series as an ASCII chart
(and, for convergence curves spanning decades, on a log10 y-axis).  No
plotting dependency is required — the CSV export exists for anyone who
wants publication graphics.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar sketch of a series (ignores non-finite entries).

    >>> sparkline([1.0, 2.0, 3.0])
    '▁▄█'
    """
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if v is None or not math.isfinite(v):
            chars.append(" ")
            continue
        # reprolint: allow=R002 exact-sentinel (flat series guard, not a tolerance)
        level = 0 if span == 0.0 else int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    logy: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named series as a fixed-size character chart.

    Each series is drawn with its own marker (assigned in insertion
    order); collisions print ``*``.  ``logy`` plots ``log10`` of the
    values (non-positive points are dropped), matching the paper's
    semi-log convergence plots.
    """
    if not series:
        raise ValueError("at least one series is required")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")
    markers = "ox+#@%&"

    def transform(v: float | None) -> float | None:
        if v is None or not math.isfinite(v):
            return None
        if logy:
            if v <= 0.0:
                return None
            return math.log10(v)
        return float(v)

    points: dict[str, list[tuple[float, float]]] = {}
    for name, ys in series.items():
        pts = []
        for xi, yi in zip(x, ys):
            ti = transform(yi)
            if ti is not None:
                pts.append((float(xi), ti))
        points[name] = pts

    all_pts = [p for pts in points.values() for p in pts]
    if not all_pts:
        raise ValueError("no plottable points (all values missing/non-positive)")
    x_lo = min(p[0] for p in all_pts)
    x_hi = max(p[0] for p in all_pts)
    y_lo = min(p[1] for p in all_pts)
    y_hi = max(p[1] for p in all_pts)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(points.items()):
        marker = markers[index % len(markers)]
        for px, py in pts:
            col = int((px - x_lo) / x_span * (width - 1))
            row = height - 1 - int((py - y_lo) / y_span * (height - 1))
            grid[row][col] = "*" if grid[row][col] not in (" ", marker) else marker

    def fmt(v: float) -> str:
        return f"1e{v:+.1f}" if logy else f"{v:.3g}"

    lines = []
    lines.append(f"{y_label}{' (log10)' if logy else ''}")
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = fmt(y_hi)
        elif row_index == height - 1:
            label = fmt(y_lo)
        else:
            label = ""
        lines.append(f"{label:>10s} |{''.join(row)}|")
    lines.append(f"{'':>10s} +{'-' * width}+")
    middle = max(1, width - 20)
    lines.append(
        f"{'':>10s}  {f'{x_lo:.3g}':<10s}"
        f"{x_label:^{middle}s}{(f'{x_hi:.3g}'):>10s}"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, name in enumerate(points)
    )
    lines.append(f"{'':>10s}  {legend}")
    return "\n".join(lines)
