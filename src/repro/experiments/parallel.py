"""Parallel execution of experiment sweeps.

Every sweep in this harness is embarrassingly parallel (independent
(parameter, system) points), so regenerating all artifacts can use every
core.  This module provides a small process-pool map with a serial
fallback, plus a parallel front end over the experiment registry.

The pattern follows the message-passing discipline of the HPC guides:
work units are pure functions of picklable inputs, results return to the
coordinator, and no shared state crosses process boundaries.  (Real MPI
deployments would replace the executor with rank-sliced loops; the
call-site code is identical.)

Process pools are *reused*: spawning workers (fork/spawn + interpreter
startup + module imports) costs far more than a typical sweep point, and
``repro-experiments --all`` runs many sweeps back to back.
:func:`parallel_map` therefore keeps one lazily created executor per
worker count and hands it to every subsequent call, shutting them all
down at interpreter exit (see :func:`shutdown_pools`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "adaptive_chunksize",
    "parallel_map",
    "run_experiments_parallel",
    "default_workers",
    "shutdown_pools",
]

T = TypeVar("T")
R = TypeVar("R")

#: Multiprocessing start methods a caller may pin (``None`` = platform
#: default).  Spawn matters for shared-memory payloads: a forked worker
#: inherits whatever the coordinator had mapped at fork time, while a
#: spawned worker starts clean and attaches blocks strictly by name —
#: the hygienic path the zero-copy data plane is tested under.
_START_METHODS = (None, "fork", "spawn", "forkserver")

#: Lazily created executors, keyed by ``(worker count, start method)``.
#: Keying by worker count alone silently handed a caller that needed a
#: different mp context (spawn vs fork) an executor built with the other
#: one — the workers would run, with the wrong inheritance semantics.
#: Guarded by a lock so concurrent callers (e.g. threaded test runners)
#: never double-create.
_POOLS: dict[tuple[int, str | None], ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(n_workers: int, context: str | None) -> ProcessPoolExecutor:
    """The reusable executor for ``(n_workers, context)``, created lazily."""
    with _POOLS_LOCK:
        pool = _POOLS.get((n_workers, context))
        if pool is None:
            mp_context = (
                multiprocessing.get_context(context)
                if context is not None
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=n_workers, mp_context=mp_context
            )
            _POOLS[(n_workers, context)] = pool
        return pool


def shutdown_pools() -> None:
    """Shut down every shared executor (registered via ``atexit``).

    Safe to call eagerly — e.g. from tests, or before forking — the next
    :func:`parallel_map` call simply recreates what it needs.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def default_workers() -> int:
    """A sensible worker count: all cores but one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def adaptive_chunksize(n_items: int, n_workers: int) -> int:
    """Default chunk size for :func:`parallel_map`.

    Four chunks per worker balances the IPC overhead of many tiny
    submissions (the old ``chunksize=1`` behaviour, which thrashes the
    pool on sweeps of cheap points) against load imbalance from chunks
    that are too coarse.

    The result is additionally clamped so there are always at least
    ``min(n_items, n_workers)`` chunks: when ``n_items < n_workers``
    (or rounding would otherwise coarsen chunks past one-per-worker) a
    single chunk must never collect a whole batch behind one worker
    while the rest of the pool idles — the boundary the shard solves
    hit first.  Equivalently: ``n_items <= n_workers`` always yields 1.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if n_items <= n_workers:
        return 1
    chunk = max(1, n_items // (4 * n_workers))
    # ceil(n_items / n_workers): the coarsest chunking that still gives
    # every worker a chunk.
    return min(chunk, -(-n_items // n_workers))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunksize: int | None = None,
    context: str | None = None,
) -> list[R]:
    """Order-preserving map over a process pool.

    ``n_workers=1`` (or a single item) degrades to a plain serial loop —
    no pool overhead, easier debugging, identical semantics.  ``fn`` and
    the items must be picklable for the parallel path.  When ``chunksize``
    is omitted it is computed adaptively from the item and worker counts
    (see :func:`adaptive_chunksize`).

    Pass ``chunksize`` explicitly when per-item costs are *skewed*: the
    adaptive heuristic assumes roughly uniform items, and a coarse chunk
    that happens to collect several expensive items serializes them
    behind one worker while the rest of the pool idles.  Class-shard
    solves (:func:`repro.core.sharding.solve_sharded`) are the canonical
    case — shard costs vary with class demand even after LPT balancing —
    so that call site pins ``chunksize=1``.  An explicit chunk size must
    be a positive integer; invalid values raise ``ValueError`` up front
    rather than surfacing as an opaque pool error mid-sweep.

    ``context`` pins the multiprocessing start method (``"fork"``,
    ``"spawn"`` or ``"forkserver"``; default: the platform's).  Pools
    are keyed by ``(n_workers, context)``, so callers with different
    context needs never share an executor built with the wrong one —
    shared-memory payloads (:mod:`repro.experiments.shm`) are exercised
    under spawn precisely because spawned workers attach blocks by name
    instead of inheriting coordinator mappings.

    The parallel path draws on a shared per-(worker count, context)
    executor that persists across calls (workers are expensive to spawn;
    sweeps are not), so back-to-back sweeps — ``repro-experiments
    --all``, the fig3/fig4/fig6 trio — pay pool startup once.
    """
    items = list(items)
    if n_workers is None:
        n_workers = default_workers()
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if chunksize is not None and chunksize < 1:
        raise ValueError("chunksize must be at least 1")
    if context not in _START_METHODS:
        raise ValueError(
            f"context must be one of {_START_METHODS}, got {context!r}"
        )
    if n_workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = adaptive_chunksize(len(items), n_workers)
    pool = _shared_pool(min(n_workers, len(items)), context)
    return list(pool.map(fn, items, chunksize=chunksize))


def _run_one(experiment_id: str):
    # Top-level function so it pickles under the spawn start method too.
    from repro.experiments.runner import run_experiment

    return experiment_id, run_experiment(experiment_id)


def run_experiments_parallel(
    experiment_ids: Sequence[str], *, n_workers: int | None = None
):
    """Regenerate several artifacts concurrently.

    Returns ``{experiment_id: ExperimentTable}`` in input order.  Unknown
    ids raise before any work is dispatched.
    """
    from repro.experiments.runner import EXPERIMENTS

    normalized = [experiment_id.lower() for experiment_id in experiment_ids]
    unknown = [e for e in normalized if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {', '.join(unknown)}")
    results = parallel_map(_run_one, normalized, n_workers=n_workers)
    return dict(results)
