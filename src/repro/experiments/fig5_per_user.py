"""F5 — the paper's Figure 5 (per-user expected response time at 60% load).

Evaluates all four schemes on the Table-1 system at medium load and
reports every user's expected response time.  Shape to reproduce: PS and
IOS give all users one (higher) value; GOS spreads users widely (some far
better, some far worse — the price of the social optimum); NASH gives
every user (here: symmetric users) the same, near-optimal value — its
user-optimality argument.
"""

from __future__ import annotations

from repro.experiments.common import SCHEME_ORDER, ExperimentTable, run_schemes
from repro.workloads.configs import paper_table1_system

__all__ = ["run"]


def run(*, utilization: float = 0.6, n_users: int = 10) -> ExperimentTable:
    """Per-user expected response times per scheme."""
    system = paper_table1_system(utilization=utilization, n_users=n_users)
    results = run_schemes(system)
    columns = ["user"] + [f"ert_{name.lower()}" for name in SCHEME_ORDER]
    rows = []
    for j in range(n_users):
        row: dict[str, object] = {"user": j + 1}
        for name in SCHEME_ORDER:
            row[f"ert_{name.lower()}"] = float(results[name].user_times[j])
        rows.append(row)
    spread = {
        name: float(results[name].user_times.max() - results[name].user_times.min())
        for name in SCHEME_ORDER
    }
    return ExperimentTable(
        experiment_id="F5",
        title="Figure 5 — expected response time for each user (60% load)",
        columns=tuple(columns),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, utilization {utilization:.0%}",
            "max-min spread per scheme: "
            + ", ".join(f"{k}={v:.4g}" for k, v in spread.items()),
        ),
    )
