"""EXT8 — truthful payments: what eliciting the truth costs.

Runs the Archer-Tardos mechanism (computers as selfish one-parameter
agents, GOS allocation, truthful payments) on the Table-1 machine park
across demand levels, reporting the **overpayment ratio** — total
payments over the true cost of the allocated work — and each machine
class's profit.  The ratio quantifies the *frugality* of truthful load
balancing: the budget premium a cluster operator pays so that machine
owners have no incentive to misreport their speeds.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.experiments.common import ExperimentTable
from repro.mechanism import run_mechanism
from repro.workloads.configs import table1_service_rates

__all__ = ["run_mechanism_frugality"]


def run_mechanism_frugality(
    *,
    demand_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7),
) -> ExperimentTable:
    """Overpayment ratio and machine profits vs placed demand.

    ``demand_fractions`` are fractions of the *contestable* capacity
    ``sum(mu) - max(mu)`` (beyond it the fastest machine is indispensable
    and no bounded truthful payment exists — that boundary is part of the
    result).
    """
    mu = table1_service_rates()
    true_costs = 1.0 / mu
    contestable = float(mu.sum() - mu.max())

    rows = []
    for fraction in demand_fractions:
        demand = float(fraction) * contestable
        outcome = run_mechanism(true_costs, demand)
        fast = mu == mu.max()
        rows.append(
            {
                "demand_fraction": float(fraction),
                "demand_jobs_per_sec": demand,
                "machines_used": int(np.sum(outcome.loads > 0.0)),
                "total_payment": float(outcome.payments.sum()),
                "true_work_cost": float((true_costs * outcome.loads).sum()),
                "overpayment_ratio": outcome.overpayment_ratio,
                "fast_machine_profit": float(outcome.utilities[fast].sum()),
            }
        )
    return ExperimentTable(
        experiment_id="EXT8",
        title="Mechanism design — the cost of truthful load balancing",
        columns=(
            "demand_fraction",
            "demand_jobs_per_sec",
            "machines_used",
            "total_payment",
            "true_work_cost",
            "overpayment_ratio",
            "fast_machine_profit",
        ),
        rows=tuple(rows),
        notes=(
            "Table-1 machine park as selfish one-parameter agents "
            "(true cost = 1/mu per job); GOS allocation on bids; "
            "Archer-Tardos truthful payments",
            f"demand expressed vs contestable capacity "
            f"{contestable:.0f} jobs/s (sum(mu) - max(mu)); beyond it the "
            "fastest machine is a monopolist and truthful payments are "
            "unbounded",
        ),
    )
