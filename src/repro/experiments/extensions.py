"""EXT1/ABL1/ABL2 — extensions and ablations beyond the paper's figures.

* **EXT1 (price of anarchy)** — the NASH/GOS overall-time ratio across
  utilization, quantifying how little efficiency user-optimality costs
  (the measure of Koutsoupias & Papadimitriou cited in the paper's
  related work), plus a Stackelberg sweep over the leader's flow share.
* **ABL1 (distributed vs sequential)** — same equilibrium from both NASH
  drivers, with message counts: the protocol's cost is one token hop per
  user per sweep.
* **ABL2 (GOS split policies)** — the same optimal aggregate loads carry
  very different fairness depending on how they are split among users.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.nash import compute_nash_equilibrium
from repro.distributed import run_nash_protocol
from repro.experiments.common import ExperimentTable
from repro.queueing.metrics import price_of_anarchy
from repro.schemes import (
    GlobalOptimalScheme,
    NashScheme,
    StackelbergScheme,
)
from repro.workloads.sweeps import DEFAULT_UTILIZATIONS, utilization_sweep

__all__ = ["run_price_of_anarchy", "run_stackelberg", "run_driver_ablation",
           "run_gos_split_ablation"]


def run_price_of_anarchy(
    *,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_users: int = 10,
) -> ExperimentTable:
    """NASH/GOS overall response time ratio across system utilization."""
    rows = []
    gos = GlobalOptimalScheme()
    nash = NashScheme()
    for rho, system in utilization_sweep(utilizations, n_users=n_users):
        nash_time = nash.allocate(system).overall_time
        gos_time = gos.allocate(system).overall_time
        rows.append(
            {
                "utilization": rho,
                "ert_nash": nash_time,
                "ert_gos": gos_time,
                "price_of_anarchy": price_of_anarchy(nash_time, gos_time),
            }
        )
    return ExperimentTable(
        experiment_id="EXT1a",
        title="Price of anarchy of the load balancing game vs utilization",
        columns=("utilization", "ert_nash", "ert_gos", "price_of_anarchy"),
        rows=tuple(rows),
        notes=("Table-1 system; PoA = D(NASH) / D(GOS) >= 1",),
    )


def run_stackelberg(
    *,
    betas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    utilization: float = 0.6,
    n_users: int = 10,
) -> ExperimentTable:
    """Stackelberg overall time as the leader's flow share grows.

    ``beta = 0`` reduces to the Wardrop equilibrium (IOS) and ``beta = 1``
    to the global optimum (GOS); intermediate shares interpolate.
    """
    from repro.workloads.configs import paper_table1_system

    system = paper_table1_system(utilization=utilization, n_users=n_users)
    gos_time = GlobalOptimalScheme().allocate(system).overall_time
    rows = []
    for beta in betas:
        result = StackelbergScheme(beta=float(beta)).allocate(system)
        rows.append(
            {
                "beta": float(beta),
                "ert_stackelberg": result.overall_time,
                "vs_gos": result.overall_time / gos_time,
            }
        )
    return ExperimentTable(
        experiment_id="EXT1b",
        title="Stackelberg leader share sweep (Roughgarden-style extension)",
        columns=("beta", "ert_stackelberg", "vs_gos"),
        rows=tuple(rows),
        notes=(f"Table-1 system, utilization {utilization:.0%}",),
    )


def run_driver_ablation(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
    tolerance: float = 1e-6,
) -> ExperimentTable:
    """ABL1: sequential solver vs message-passing protocol."""
    from repro.workloads.configs import paper_table1_system

    system = paper_table1_system(utilization=utilization, n_users=n_users)
    rows = []
    for init in ("zero", "proportional"):
        sequential = compute_nash_equilibrium(
            system, init=init, tolerance=tolerance
        )
        protocol = run_nash_protocol(system, init=init, tolerance=tolerance)
        gap = float(
            np.abs(
                sequential.profile.fractions - protocol.result.profile.fractions
            ).max()
        )
        rows.append(
            {
                "init": init,
                "iterations_sequential": sequential.iterations,
                "iterations_protocol": protocol.result.iterations,
                "messages": protocol.messages_sent,
                "max_profile_gap": gap,
            }
        )
    return ExperimentTable(
        experiment_id="ABL1",
        title="Ablation — sequential driver vs distributed ring protocol",
        columns=(
            "init",
            "iterations_sequential",
            "iterations_protocol",
            "messages",
            "max_profile_gap",
        ),
        rows=tuple(rows),
        notes=(
            f"Table-1 system, {n_users} users, utilization {utilization:.0%}; "
            "message count = users x sweeps + termination circulation",
        ),
    )


def run_gos_split_ablation(
    *,
    utilization: float = 0.6,
    n_users: int = 10,
) -> ExperimentTable:
    """ABL2: how the GOS per-user split policy trades fairness for nothing.

    All policies achieve the same (optimal) overall time — the fairness
    differences are free choices the central optimizer makes silently.
    """
    from repro.workloads.configs import paper_table1_system

    system = paper_table1_system(utilization=utilization, n_users=n_users)
    rows = []
    for split in ("sequential", "fair", "slsqp"):
        result = GlobalOptimalScheme(split=split).allocate(system)  # type: ignore[arg-type]
        rows.append(
            {
                "split": split,
                "overall_time": result.overall_time,
                "fairness": result.fairness,
                "worst_user_time": float(result.user_times.max()),
                "best_user_time": float(result.user_times.min()),
            }
        )
    return ExperimentTable(
        experiment_id="ABL2",
        title="Ablation — GOS per-user split policies",
        columns=(
            "split",
            "overall_time",
            "fairness",
            "worst_user_time",
            "best_user_time",
        ),
        rows=tuple(rows),
        notes=(f"Table-1 system, utilization {utilization:.0%}",),
    )
