"""The online equilibrium engine: a churn-resilient service loop.

The paper runs NASH "periodically or when the system parameters are
changed"; this module is that sentence turned into a long-running
engine.  An :class:`OnlineEquilibriumEngine` holds the current fleet
state and equilibrium profile and consumes a churn trace epoch by epoch:

1. the epoch's events are applied atomically to the
   :class:`~repro.engine.state.FleetState`;
2. the previous equilibrium is adapted into a warm start for the new
   effective (surviving-computer) game via
   :func:`repro.core.continuation.warm_start_profile` — including
   across computer failures and reopenings, which re-split the failed
   or recovered computer's aggregate load instead of cold-starting;
3. the solve runs under a sweep budget with an epsilon-certificate
   early stop (:func:`repro.engine.reequilibrate.converge_bounded`),
   so a pathological epoch costs bounded work, never a stalled loop;
4. capacity exhaustion (up to and including every computer down) is a
   *degraded hold*: the typed
   :class:`~repro.core.degradation.CapacityExhausted` is surfaced on
   the epoch report, the last good profile is retained for the
   recovery warm start, and the loop continues;
5. SLA violations are accounted per epoch against the configured
   per-user response-time target.

Every epoch is traced (``engine.epoch`` events plus counters and the
sweeps-per-event histogram) through :mod:`repro.telemetry`; the
``repro-trace engine`` view rolls a run's trace up.  See
docs/OPERATIONS.md for the operational contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Literal

import numpy as np

from repro._typing import BoolArray, FloatArray
from repro.core.continuation import warm_start_profile
from repro.core.degradation import CapacityExhausted, embed_profile
from repro.core.equilibrium import EquilibriumCertificate
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
)
from repro.core.strategy import StrategyProfile
from repro.engine.events import ChurnEpoch, ChurnEvent, as_epoch, event_kind
from repro.engine.reequilibrate import converge_bounded
from repro.engine.sla import SLAAccountant, SLAPolicy, SLAReport
from repro.engine.state import FleetState
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "EngineConfig",
    "EngineRun",
    "EpochReport",
    "EpochStatus",
    "OnlineEquilibriumEngine",
    "WarmMode",
]

EpochStatus = Literal["ok", "degraded", "exhausted", "idle"]
WarmMode = Literal["repair", "strict", "off"]

#: Histogram bucket edges for sweeps spent per epoch.
_SWEEP_BOUNDS: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                    128.0, 256.0)


@dataclass(frozen=True)
class EngineConfig:
    """Operating parameters of the online engine.

    Parameters
    ----------
    tolerance:
        Sweep-norm acceptance tolerance of each solve (the solver's
        ``eps``).
    epsilon:
        Certificate target: an epoch counts as certified when its
        maximum best-response regret is at most this.  Defaults to
        ``tolerance`` — the solver's standard epsilon.
    sweep_budget:
        Hard cap on best-reply sweeps per epoch.
    certify_every:
        Sweeps between certificate checks (the early-stop cadence);
        ``None`` certifies once, after a single uninterrupted solve.
    warm_mode:
        ``"repair"`` adapts the previous equilibrium through the full
        continuation/degradation cascade; ``"strict"`` only reuses it
        verbatim when shape-compatible and feasible (the legacy
        snapshot-driver semantics); ``"off"`` always cold-starts.
    cold_init:
        Initialization used when no warm start is available.
    sla:
        Optional per-user response-time objective to account against.
    """

    tolerance: float = DEFAULT_TOLERANCE
    epsilon: float | None = None
    sweep_budget: int = DEFAULT_MAX_SWEEPS
    certify_every: int | None = 16
    warm_mode: WarmMode = "repair"
    cold_init: Initialization = "proportional"
    sla: SLAPolicy | None = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.epsilon is not None and self.epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        if self.sweep_budget < 1:
            raise ValueError("sweep_budget must be at least 1")
        if self.certify_every is not None and self.certify_every < 1:
            raise ValueError("certify_every must be at least 1 (or None)")
        if self.warm_mode not in ("repair", "strict", "off"):
            raise ValueError(f"unknown warm mode {self.warm_mode!r}")

    @property
    def certificate_epsilon(self) -> float:
        return self.tolerance if self.epsilon is None else self.epsilon


@dataclass(frozen=True)
class EpochReport:
    """Everything the engine knows about one processed epoch.

    ``system``/``result``/``certificate`` are expressed on the epoch's
    *effective* (surviving) system; ``profile`` is embedded back at
    nominal fleet width (zero columns on offline computers).  On an
    ``"exhausted"`` epoch the typed error is attached as ``error`` and
    ``profile`` holds the last good equilibrium (stale, retained for
    the recovery warm start); on an ``"idle"`` epoch there is no game
    and all solve fields are ``None``.
    """

    index: int
    events: ChurnEpoch
    status: EpochStatus
    online: BoolArray
    n_users: int
    system: DistributedSystem | None
    result: NashResult | None
    certificate: EquilibriumCertificate | None
    profile: StrategyProfile | None
    warm_started: bool
    sweeps: int
    certified: bool
    epsilon: float
    latency_s: float
    sla_violations: int
    error: CapacityExhausted | None = None

    @property
    def degraded(self) -> bool:
        """True when the epoch ran with part (or all) of the fleet down."""
        return self.status in ("degraded", "exhausted")


@dataclass(frozen=True)
class EngineRun:
    """Roll-up over every epoch an engine has processed so far."""

    reports: tuple[EpochReport, ...]
    sla: SLAReport | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.reports)

    @property
    def statuses(self) -> tuple[EpochStatus, ...]:
        return tuple(report.status for report in self.reports)

    @property
    def degraded_epochs(self) -> int:
        return sum(1 for r in self.reports if r.status == "degraded")

    @property
    def exhausted_epochs(self) -> int:
        return sum(1 for r in self.reports if r.status == "exhausted")

    @property
    def idle_epochs(self) -> int:
        return sum(1 for r in self.reports if r.status == "idle")

    @property
    def solved_epochs(self) -> int:
        return sum(1 for r in self.reports if r.status in ("ok", "degraded"))

    @property
    def warm_epochs(self) -> int:
        return sum(1 for r in self.reports if r.warm_started)

    @property
    def all_certified(self) -> bool:
        """Every solvable epoch certified (idle/exhausted epochs have no
        equilibrium to certify and are excluded)."""
        return all(
            r.certified for r in self.reports if r.status in ("ok", "degraded")
        )

    @property
    def sweeps_per_epoch(self) -> FloatArray:
        return np.asarray([r.sweeps for r in self.reports], dtype=float)

    @property
    def total_sweeps(self) -> int:
        return int(sum(r.sweeps for r in self.reports))

    @property
    def total_sla_violations(self) -> int:
        return int(sum(r.sla_violations for r in self.reports))

    @property
    def mean_latency_s(self) -> float:
        if not self.reports:
            return 0.0
        return float(np.mean([r.latency_s for r in self.reports]))


class OnlineEquilibriumEngine:
    """Long-running equilibrium maintenance over a churn-event stream.

    Constructing the engine performs the bootstrap solve (epoch 0, no
    events) on the given system; :meth:`process_epoch` then advances
    one epoch at a time and :meth:`run` drives a whole trace.

    >>> from repro.workloads import paper_table1_system
    >>> from repro.engine.events import ComputerFailure, ComputerReopen
    >>> engine = OnlineEquilibriumEngine(
    ...     paper_table1_system(utilization=0.6, n_users=4)
    ... )
    >>> engine.process_epoch(ComputerFailure(15)).status
    'degraded'
    >>> engine.process_epoch(ComputerReopen(15)).status
    'ok'
    """

    def __init__(
        self,
        system: DistributedSystem,
        *,
        config: EngineConfig | None = None,
        tracer: Tracer | None = None,
    ):
        self.config = config if config is not None else EngineConfig()
        self._tracer = tracer
        self._state = FleetState(system)
        self._fractions_full: FloatArray | None = None
        self._effective: DistributedSystem | None = None
        self._effective_online: BoolArray | None = None
        self._reports: list[EpochReport] = []
        self._sla = (
            SLAAccountant(self.config.sla) if self.config.sla is not None else None
        )
        tr = self._resolve_tracer()
        if tr.enabled:
            tr.emit(
                "engine.start",
                computers=self._state.n_computers,
                users=self._state.n_users,
                tolerance=self.config.tolerance,
                epsilon=self.config.certificate_epsilon,
                sweep_budget=self.config.sweep_budget,
                warm_mode=self.config.warm_mode,
            )
        self.process_epoch(())

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def state(self) -> FleetState:
        return self._state

    @property
    def epoch(self) -> int:
        """Number of processed epochs (the bootstrap solve is epoch 0)."""
        return len(self._reports)

    @property
    def reports(self) -> tuple[EpochReport, ...]:
        return tuple(self._reports)

    @property
    def bootstrap(self) -> EpochReport:
        return self._reports[0]

    @property
    def profile(self) -> StrategyProfile | None:
        """Current equilibrium at nominal fleet width, or ``None`` (idle)."""
        if self._fractions_full is None:
            return None
        return StrategyProfile(self._fractions_full)

    def sla_report(self) -> SLAReport | None:
        return self._sla.report() if self._sla is not None else None

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self, trace: Iterable[ChurnEvent | ChurnEpoch]) -> EngineRun:
        """Process every epoch of ``trace``; returns the full-run roll-up
        (bootstrap and previously processed epochs included)."""
        for epoch in trace:
            self.process_epoch(epoch)
        return EngineRun(reports=tuple(self._reports), sla=self.sla_report())

    def process_epoch(self, events: ChurnEvent | ChurnEpoch) -> EpochReport:
        """Apply one epoch's events and re-equilibrate, bounded."""
        started = perf_counter()
        epoch = as_epoch(events)
        tracer = self._resolve_tracer()
        index = len(self._reports)
        for event in epoch:
            self._state.apply(event)
            if tracer.enabled:
                tracer.emit("engine.event", epoch=index, kind=event_kind(event))
                tracer.count("engine.events")

        if self._state.n_users == 0:
            report = self._idle_report(index, epoch, started)
        else:
            try:
                effective = self._state.effective_system()
            except CapacityExhausted as error:
                report = self._exhausted_report(index, epoch, started, error)
            else:
                report = self._solve_report(index, epoch, started, effective)
        self._reports.append(report)
        self._trace_epoch(tracer, report)
        return report

    # ------------------------------------------------------------------
    # Epoch outcomes
    # ------------------------------------------------------------------
    def _idle_report(
        self, index: int, epoch: ChurnEpoch, started: float
    ) -> EpochReport:
        # No users, no game: drop the profile (a later arrival cold
        # starts) but keep serving the moment demand returns.
        self._fractions_full = None
        self._effective = None
        self._effective_online = None
        if self._sla is not None:
            self._sla.record_epoch(None)
        return EpochReport(
            index=index,
            events=epoch,
            status="idle",
            online=self._state.online.copy(),
            n_users=0,
            system=None,
            result=None,
            certificate=None,
            profile=None,
            warm_started=False,
            sweeps=0,
            certified=True,
            epsilon=0.0,
            latency_s=perf_counter() - started,
            sla_violations=0,
        )

    def _exhausted_report(
        self,
        index: int,
        epoch: ChurnEpoch,
        started: float,
        error: CapacityExhausted,
    ) -> EpochReport:
        # Degraded hold: surface the typed error, keep the last good
        # profile and effective system for the recovery warm start.
        violations = 0
        if self._sla is not None:
            violations = self._sla.record_unserved(self._state.n_users)
        return EpochReport(
            index=index,
            events=epoch,
            status="exhausted",
            online=self._state.online.copy(),
            n_users=self._state.n_users,
            system=None,
            result=None,
            certificate=None,
            profile=self.profile,
            warm_started=False,
            sweeps=0,
            certified=False,
            epsilon=float("inf"),
            latency_s=perf_counter() - started,
            sla_violations=violations,
            error=error,
        )

    def _solve_report(
        self,
        index: int,
        epoch: ChurnEpoch,
        started: float,
        effective: DistributedSystem,
    ) -> EpochReport:
        seed = self._warm_seed(effective)
        init: Initialization | StrategyProfile = (
            seed if seed is not None else self.config.cold_init
        )
        outcome = converge_bounded(
            effective,
            init,
            tolerance=self.config.tolerance,
            epsilon=self.config.certificate_epsilon,
            sweep_budget=self.config.sweep_budget,
            certify_every=self.config.certify_every,
        )
        online = self._state.online.copy()
        full = embed_profile(outcome.result.profile.fractions, online)
        self._fractions_full = full
        self._effective = effective
        self._effective_online = online
        user_times = (
            outcome.certificate.user_times
            if outcome.certificate is not None
            else outcome.result.user_times
        )
        violations = 0
        if self._sla is not None:
            violations = self._sla.record_epoch(user_times)
        return EpochReport(
            index=index,
            events=epoch,
            status="degraded" if self._state.offline_indices else "ok",
            online=online,
            n_users=self._state.n_users,
            system=effective,
            result=outcome.result,
            certificate=outcome.certificate,
            profile=StrategyProfile(full),
            warm_started=seed is not None,
            sweeps=outcome.sweeps,
            certified=outcome.certified,
            epsilon=outcome.epsilon,
            latency_s=perf_counter() - started,
            sla_violations=violations,
        )

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------
    def _warm_seed(self, effective: DistributedSystem) -> StrategyProfile | None:
        if self.config.warm_mode == "off":
            return None
        if (
            self._fractions_full is None
            or self._effective is None
            or self._effective_online is None
        ):
            return None
        previous = StrategyProfile(
            self._fractions_full[:, self._effective_online]
        )
        if self.config.warm_mode == "strict":
            same_shape = previous.fractions.shape == (
                effective.n_users,
                effective.n_computers,
            )
            same_fleet = bool(
                np.array_equal(self._effective_online, self._state.online)
            )
            if same_shape and same_fleet and previous.is_feasible(effective):
                return previous
            return None
        return warm_start_profile(
            effective, previous, previous_system=self._effective
        )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _resolve_tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else current_tracer()

    def _trace_epoch(self, tracer: Tracer, report: EpochReport) -> None:
        if not tracer.enabled:
            return
        tracer.emit(
            "engine.epoch",
            index=report.index,
            status=report.status,
            n_events=len(report.events),
            kinds=[event_kind(event) for event in report.events],
            n_online=int(report.online.sum()),
            n_users=report.n_users,
            warm_started=report.warm_started,
            sweeps=report.sweeps,
            certified=report.certified,
            epsilon=report.epsilon,
            latency_s=report.latency_s,
            sla_violations=report.sla_violations,
            error=None if report.error is None else str(report.error),
        )
        tracer.count("engine.epochs")
        if report.status == "degraded":
            tracer.count("engine.degraded_epochs")
        elif report.status == "exhausted":
            tracer.count("engine.exhausted_epochs")
        if report.sla_violations:
            tracer.count("engine.sla_violations", report.sla_violations)
        tracer.registry.histogram(
            "engine.sweeps_per_event", _SWEEP_BOUNDS
        ).observe(float(report.sweeps))
        tracer.observe("engine.reequilibrate_seconds", report.latency_s)
