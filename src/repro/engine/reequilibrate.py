"""Bounded incremental re-equilibration: one epoch's solve, capped.

The engine must never let one bad epoch stall the loop, so every solve
runs under two independent brakes:

* a **sweep budget** — the hard cap on best-reply sweeps spent on the
  epoch, spread over chunks of ``certify_every`` sweeps;
* an **epsilon-certificate early stop** — after each chunk the profile
  is certified with :func:`repro.core.equilibrium.best_response_regrets`
  (one batched OPTIMAL call, about the cost of a single sweep) and the
  solve stops as soon as the maximum regret falls to the target
  ``epsilon``, even if the solver's sweep-norm criterion has not
  triggered yet.

Chunked solving is exact, not approximate: restarting best-reply sweeps
from the current profile continues the same iteration (the only
difference is that the restart re-reads the users' *actual* expected
times instead of the per-sweep stale ones, which only affects the
stopping norm, never the iterates).  ``certify_every=None`` disables
chunking — a single solver call followed by one certification — which
is what the legacy snapshot driver uses for bit-exact parity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.equilibrium import EquilibriumCertificate, best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import Initialization, NashResult, NashSolver
from repro.core.strategy import StrategyProfile

__all__ = ["ReequilibrationOutcome", "converge_bounded"]


@dataclass(frozen=True)
class ReequilibrationOutcome:
    """One epoch's solve: the combined result plus its certificate.

    Attributes
    ----------
    result:
        Solver outcome over all chunks (iterations and norm history are
        accumulated across chunks).
    certificate:
        Regret certificate of the final profile, or ``None`` when the
        final profile could not be certified (infeasible — only
        reachable when the budget expires mid-repair of a bad seed).
    certified:
        Whether the certificate's epsilon met the target.
    early_stopped:
        Whether the certificate stopped the solve before the solver's
        own sweep-norm criterion did.
    """

    result: NashResult
    certificate: EquilibriumCertificate | None
    certified: bool
    early_stopped: bool

    @property
    def sweeps(self) -> int:
        return self.result.iterations

    @property
    def epsilon(self) -> float:
        if self.certificate is None:
            return float("inf")
        return self.certificate.epsilon


def _certify(
    system: DistributedSystem, profile: StrategyProfile
) -> EquilibriumCertificate | None:
    try:
        return best_response_regrets(system, profile)
    except ValueError:
        # Infeasible profile (budget expired mid-repair): no certificate.
        return None


def converge_bounded(
    system: DistributedSystem,
    init: Initialization | StrategyProfile,
    *,
    tolerance: float,
    epsilon: float,
    sweep_budget: int,
    certify_every: int | None,
) -> ReequilibrationOutcome:
    """Best-reply sweeps under a sweep budget with certificate early stop."""
    if sweep_budget < 1:
        raise ValueError("sweep_budget must be at least 1")
    if certify_every is not None and certify_every < 1:
        raise ValueError("certify_every must be at least 1 (or None)")

    if certify_every is None:
        solver = NashSolver(tolerance=tolerance, max_sweeps=sweep_budget)
        result = solver.solve(system, init)
        certificate = _certify(system, result.profile)
        certified = certificate is not None and certificate.epsilon <= epsilon
        return ReequilibrationOutcome(
            result=result,
            certificate=certificate,
            certified=certified,
            early_stopped=False,
        )

    remaining = sweep_budget
    seed: Initialization | StrategyProfile = init
    norms: list[float] = []
    last: NashResult | None = None
    certificate: EquilibriumCertificate | None = None
    early_stopped = False
    while remaining > 0:
        chunk = min(certify_every, remaining)
        solver = NashSolver(tolerance=tolerance, max_sweeps=chunk)
        last = solver.solve(system, seed)
        norms.extend(float(n) for n in last.norm_history)
        remaining -= last.iterations
        seed = last.profile
        certificate = _certify(system, last.profile)
        if certificate is not None and certificate.epsilon <= epsilon:
            early_stopped = not last.converged
            break
        if last.converged:
            break
    assert last is not None  # sweep_budget >= 1 guarantees one chunk
    certified = certificate is not None and certificate.epsilon <= epsilon
    combined = NashResult(
        profile=last.profile,
        converged=last.converged or certified,
        iterations=len(norms),
        norm_history=np.asarray(norms, dtype=float),
        user_times=(
            certificate.user_times if certificate is not None else last.user_times
        ),
    )
    return ReequilibrationOutcome(
        result=combined,
        certificate=certificate,
        certified=certified,
        early_stopped=early_stopped,
    )
