"""Online equilibrium engine: churn-resilient service mode.

The package that keeps a NASH equilibrium alive under churn.  See
:mod:`repro.engine.service` for the loop itself, docs/OPERATIONS.md for
the operational contract, and :mod:`repro.workloads.traces` for churn
trace generators.
"""

from repro.engine.events import (
    CapacityChange,
    ChurnEpoch,
    ChurnEvent,
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetDemand,
    SetUtilization,
    UserArrival,
    UserDeparture,
    as_epoch,
    event_kind,
)
from repro.engine.reequilibrate import ReequilibrationOutcome, converge_bounded
from repro.engine.service import (
    EngineConfig,
    EngineRun,
    EpochReport,
    EpochStatus,
    OnlineEquilibriumEngine,
    WarmMode,
)
from repro.engine.sla import SLAAccountant, SLAPolicy, SLAReport
from repro.engine.state import FleetState

__all__ = [
    "CapacityChange",
    "ChurnEpoch",
    "ChurnEvent",
    "ComputerFailure",
    "ComputerReopen",
    "EngineConfig",
    "EngineRun",
    "EpochReport",
    "EpochStatus",
    "FleetState",
    "OnlineEquilibriumEngine",
    "PhiDrift",
    "ReequilibrationOutcome",
    "SLAAccountant",
    "SLAPolicy",
    "SLAReport",
    "SetDemand",
    "SetUtilization",
    "UserArrival",
    "UserDeparture",
    "WarmMode",
    "as_epoch",
    "converge_bounded",
    "event_kind",
]
