"""SLA accounting for the online service mode.

The service-level objective is per-user: every user's equilibrium
expected response time ``D_j`` must stay at or below a target.  The
:class:`SLAPolicy` evaluates one epoch's user times; the
:class:`SLAAccountant` accumulates the per-epoch outcomes into the
counters the telemetry layer and the ``repro-trace engine`` view report:
total violations (user-epochs above target), violation epochs, and
unserved epochs (capacity-exhausted epochs, where every present user is
counted as violated — a user with no feasible allocation is the worst
possible response time, not a missing sample).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._typing import FloatArray

__all__ = ["SLAPolicy", "SLAAccountant", "SLAReport"]


@dataclass(frozen=True)
class SLAPolicy:
    """Per-user response-time objective (seconds of expected response)."""

    target_response_time: float

    def __post_init__(self) -> None:
        if self.target_response_time <= 0.0:
            raise ValueError("SLA target must be strictly positive")

    def violations(self, user_times: FloatArray) -> int:
        """How many users exceed the target (non-finite times count)."""
        times = np.asarray(user_times, dtype=float)
        over = ~(times <= self.target_response_time)
        return int(np.count_nonzero(over))


@dataclass(frozen=True)
class SLAReport:
    """Frozen snapshot of the accumulated SLA counters.

    Attributes
    ----------
    target_response_time:
        The per-user objective the run was accounted against.
    epochs:
        Epochs accounted (idle epochs included — zero users, zero
        violations).
    violations:
        Total user-epochs above target.
    violation_epochs:
        Epochs with at least one violation.
    unserved_epochs:
        Capacity-exhausted epochs (every present user counted violated).
    worst_time:
        Largest finite per-user expected response time observed, or
        ``nan`` when no epoch produced one.
    """

    target_response_time: float
    epochs: int
    violations: int
    violation_epochs: int
    unserved_epochs: int
    worst_time: float

    @property
    def clean(self) -> bool:
        return self.violations == 0 and self.unserved_epochs == 0


class SLAAccountant:
    """Accumulates per-epoch SLA outcomes for one engine run."""

    __slots__ = ("policy", "_epochs", "_violations", "_violation_epochs",
                 "_unserved", "_worst")

    def __init__(self, policy: SLAPolicy):
        self.policy = policy
        self._epochs = 0
        self._violations = 0
        self._violation_epochs = 0
        self._unserved = 0
        self._worst = float("nan")

    def record_epoch(self, user_times: FloatArray | None) -> int:
        """Account one served (or idle) epoch; returns its violation count."""
        self._epochs += 1
        if user_times is None or np.asarray(user_times).size == 0:
            return 0
        violations = self.policy.violations(np.asarray(user_times, dtype=float))
        self._violations += violations
        if violations:
            self._violation_epochs += 1
        finite = np.asarray(user_times, dtype=float)
        finite = finite[np.isfinite(finite)]
        if finite.size:
            peak = float(finite.max())
            if not self._worst >= peak:  # NaN-aware running max
                self._worst = peak
        return violations

    def record_unserved(self, n_users: int) -> int:
        """Account one capacity-exhausted epoch: all users violated."""
        self._epochs += 1
        self._unserved += 1
        self._violations += n_users
        if n_users:
            self._violation_epochs += 1
        return n_users

    def report(self) -> SLAReport:
        return SLAReport(
            target_response_time=self.policy.target_response_time,
            epochs=self._epochs,
            violations=self._violations,
            violation_epochs=self._violation_epochs,
            unserved_epochs=self._unserved,
            worst_time=self._worst,
        )
