"""Typed churn events — the input vocabulary of the online engine.

A long-running deployment is not a sequence of full system snapshots but
a stream of *changes*: users arrive and depart, their demand drifts,
computers fail, reopen, or are re-provisioned.  Each change is one
frozen, validated event; an **epoch** is a tuple of events applied
atomically before the engine re-equilibrates once (so a simultaneous
failure + flash crowd is a single epoch with two events).

Computers are referenced by their index in the *nominal* fleet — fleet
membership is fixed for the lifetime of an engine, only the online mask
and service rates change — while users are referenced by name, because
the user population grows and shrinks and positional indices would
shift under churn.

The trace generators in :mod:`repro.workloads.traces` compose these
events into diurnal / failure / flash-crowd scenarios; see
docs/OPERATIONS.md for the trace format contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "CapacityChange",
    "ChurnEpoch",
    "ChurnEvent",
    "ComputerFailure",
    "ComputerReopen",
    "PhiDrift",
    "SetDemand",
    "SetUtilization",
    "UserArrival",
    "UserDeparture",
    "as_epoch",
    "event_kind",
]


def _check_rates(rates: tuple[float, ...], what: str) -> None:
    if not rates:
        raise ValueError(f"{what} must name at least one user")
    if any(rate <= 0.0 for rate in rates):
        raise ValueError(f"{what} must be strictly positive")


@dataclass(frozen=True, slots=True)
class UserArrival:
    """New users join with the given job-generation rates ``phi``.

    ``names`` (optional) must match ``arrival_rates`` in length; unnamed
    arrivals are auto-named by the engine state.
    """

    arrival_rates: tuple[float, ...]
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_rates(self.arrival_rates, "arrival rates")
        if self.names and len(self.names) != len(self.arrival_rates):
            raise ValueError("names must match arrival_rates in length")


@dataclass(frozen=True, slots=True)
class UserDeparture:
    """Users leave the system, by name or most-recent-first count.

    Exactly one of ``names``/``count`` selects the departing users:
    named departures must reference existing users; ``count`` removes
    the ``count`` most recently arrived users (clamped to the current
    population, so a departure racing an earlier departure degrades to
    a no-op rather than crashing the loop).
    """

    names: tuple[str, ...] = ()
    count: int = 0

    def __post_init__(self) -> None:
        if bool(self.names) == bool(self.count):
            raise ValueError("specify exactly one of names or count")
        if self.count < 0:
            raise ValueError("count must be nonnegative")


@dataclass(frozen=True, slots=True)
class PhiDrift:
    """Multiplicative drift of user demand.

    ``factor`` scales every user's rate; ``per_user`` additionally
    scales named users (applied after the global factor).
    """

    factor: float = 1.0
    per_user: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.factor <= 0.0:
            raise ValueError("drift factor must be strictly positive")
        if any(f <= 0.0 for _, f in self.per_user):
            raise ValueError("per-user drift factors must be strictly positive")


@dataclass(frozen=True, slots=True)
class SetDemand:
    """Wholesale replacement of the user population.

    Used by the snapshot-driven :func:`repro.core.dynamics.run_dynamic_balancing`
    wrapper; churn traces normally prefer the granular events.
    """

    arrival_rates: tuple[float, ...]
    names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _check_rates(self.arrival_rates, "arrival rates")
        if self.names and len(self.names) != len(self.arrival_rates):
            raise ValueError("names must match arrival_rates in length")


@dataclass(frozen=True, slots=True)
class SetUtilization:
    """Rescale total demand to ``utilization`` times the *nominal* capacity.

    Nominal capacity is the sum of all computers' current service rates,
    offline ones included — a diurnal load curve does not dip because a
    machine failed, so a failure raises the utilization the survivors
    actually see.  Relative user shares are preserved; with no users the
    event is a no-op.
    """

    utilization: float

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization < 1.0:
            raise ValueError("utilization must lie strictly inside (0, 1)")


@dataclass(frozen=True, slots=True)
class ComputerFailure:
    """Computer ``computer`` (nominal fleet index) goes offline.

    Idempotent: failing an already-offline computer is a no-op.
    """

    computer: int

    def __post_init__(self) -> None:
        if self.computer < 0:
            raise ValueError("computer index must be nonnegative")


@dataclass(frozen=True, slots=True)
class ComputerReopen:
    """Computer ``computer`` comes back online (idempotent)."""

    computer: int

    def __post_init__(self) -> None:
        if self.computer < 0:
            raise ValueError("computer index must be nonnegative")


@dataclass(frozen=True, slots=True)
class CapacityChange:
    """Computer ``computer`` is re-provisioned to ``service_rate`` jobs/s."""

    computer: int
    service_rate: float

    def __post_init__(self) -> None:
        if self.computer < 0:
            raise ValueError("computer index must be nonnegative")
        if self.service_rate <= 0.0:
            raise ValueError("service rate must be strictly positive")


ChurnEvent = Union[
    UserArrival,
    UserDeparture,
    PhiDrift,
    SetDemand,
    SetUtilization,
    ComputerFailure,
    ComputerReopen,
    CapacityChange,
]

#: One engine epoch: events applied atomically, then one re-equilibration.
ChurnEpoch = tuple[ChurnEvent, ...]

_EVENT_KINDS: dict[type, str] = {
    UserArrival: "user_arrival",
    UserDeparture: "user_departure",
    PhiDrift: "phi_drift",
    SetDemand: "set_demand",
    SetUtilization: "set_utilization",
    ComputerFailure: "computer_failure",
    ComputerReopen: "computer_reopen",
    CapacityChange: "capacity_change",
}


def event_kind(event: ChurnEvent) -> str:
    """Stable snake_case label of an event (telemetry field values)."""
    return _EVENT_KINDS[type(event)]


def as_epoch(events: ChurnEvent | ChurnEpoch) -> ChurnEpoch:
    """Normalize a single event or an event tuple into one epoch."""
    if isinstance(events, tuple):
        for event in events:
            if type(event) not in _EVENT_KINDS:
                raise TypeError(f"not a churn event: {event!r}")
        return events
    if type(events) in _EVENT_KINDS:
        return (events,)
    raise TypeError(f"not a churn event or epoch: {events!r}")
