"""Mutable fleet state: the engine's view of the system under churn.

A :class:`FleetState` tracks the *nominal* fleet (every computer ever
provisioned, with its current service rate and an online flag) and the
current user population, and applies :mod:`repro.engine.events` to them.
The immutable :class:`~repro.core.model.DistributedSystem` the solver
needs is derived on demand via :meth:`FleetState.effective_system` —
the game restricted to the online computers, which raises the typed
:class:`~repro.core.degradation.CapacityExhausted` the moment the
survivors cannot carry the offered load (including the all-computers-
down window), instead of handing the solver an infeasible game.
"""

from __future__ import annotations

import numpy as np

from repro._typing import BoolArray, FloatArray
from repro.core.degradation import CapacityExhausted
from repro.core.model import DistributedSystem
from repro.engine.events import (
    CapacityChange,
    ChurnEvent,
    ComputerFailure,
    ComputerReopen,
    PhiDrift,
    SetDemand,
    SetUtilization,
    UserArrival,
    UserDeparture,
)

__all__ = ["FleetState"]


class FleetState:
    """The engine's mutable system state: nominal fleet + user population."""

    __slots__ = (
        "service_rates",
        "online",
        "computer_names",
        "user_rates",
        "user_names",
        "_user_seq",
    )

    def __init__(self, system: DistributedSystem):
        self.service_rates: FloatArray = np.array(
            system.service_rates, dtype=float, copy=True
        )
        self.online: BoolArray = np.ones(system.n_computers, dtype=bool)
        self.computer_names: tuple[str, ...] = system.computer_names
        self.user_rates: FloatArray = np.array(
            system.arrival_rates, dtype=float, copy=True
        )
        self.user_names: tuple[str, ...] = system.user_names
        self._user_seq: int = system.n_users

    # ------------------------------------------------------------------
    # Shape and aggregate properties
    # ------------------------------------------------------------------
    @property
    def n_computers(self) -> int:
        """Size of the nominal fleet (online or not)."""
        return int(self.service_rates.size)

    @property
    def n_online(self) -> int:
        return int(self.online.sum())

    @property
    def n_users(self) -> int:
        return int(self.user_rates.size)

    @property
    def nominal_capacity(self) -> float:
        """Aggregate service rate of the whole fleet, offline included."""
        return float(self.service_rates.sum())

    @property
    def online_capacity(self) -> float:
        return float(self.service_rates[self.online].sum())

    @property
    def total_demand(self) -> float:
        return float(self.user_rates.sum())

    @property
    def offline_indices(self) -> tuple[int, ...]:
        return tuple(int(i) for i in np.flatnonzero(~self.online))

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent) -> None:
        """Mutate the state by one churn event (see each event's docstring)."""
        if isinstance(event, UserArrival):
            self._arrive(event)
        elif isinstance(event, UserDeparture):
            self._depart(event)
        elif isinstance(event, PhiDrift):
            self._drift(event)
        elif isinstance(event, SetDemand):
            self._set_demand(event)
        elif isinstance(event, SetUtilization):
            self._set_utilization(event)
        elif isinstance(event, ComputerFailure):
            self._set_online(event.computer, online=False)
        elif isinstance(event, ComputerReopen):
            self._set_online(event.computer, online=True)
        elif isinstance(event, CapacityChange):
            self._check_computer(event.computer)
            self.service_rates[event.computer] = event.service_rate
        else:  # pragma: no cover - unreachable for the ChurnEvent union
            raise TypeError(f"unknown churn event {event!r}")

    def _arrive(self, event: UserArrival) -> None:
        names = list(event.names)
        while len(names) < len(event.arrival_rates):
            names.append(f"user-{self._user_seq + len(names)}")
        taken = set(self.user_names)
        clash = taken.intersection(names)
        if clash:
            raise ValueError(f"arriving users already present: {sorted(clash)}")
        if len(set(names)) != len(names):
            raise ValueError("arriving user names must be unique")
        self._user_seq += len(names)
        self.user_rates = np.concatenate(
            [self.user_rates, np.asarray(event.arrival_rates, dtype=float)]
        )
        self.user_names = self.user_names + tuple(names)

    def _depart(self, event: UserDeparture) -> None:
        if event.names:
            missing = set(event.names) - set(self.user_names)
            if missing:
                raise ValueError(f"departing users not present: {sorted(missing)}")
            keep = [name not in set(event.names) for name in self.user_names]
        else:
            cut = max(0, self.n_users - event.count)
            keep = [index < cut for index in range(self.n_users)]
        mask = np.asarray(keep, dtype=bool)
        self.user_rates = self.user_rates[mask]
        self.user_names = tuple(
            name for name, kept in zip(self.user_names, keep) if kept
        )

    def _drift(self, event: PhiDrift) -> None:
        rates = self.user_rates * event.factor
        if event.per_user:
            by_name = {name: index for index, name in enumerate(self.user_names)}
            for name, factor in event.per_user:
                if name not in by_name:
                    raise ValueError(f"drifting user not present: {name!r}")
                rates[by_name[name]] *= factor
        self.user_rates = rates

    def _set_demand(self, event: SetDemand) -> None:
        names = event.names
        if not names:
            names = tuple(f"user-{j}" for j in range(len(event.arrival_rates)))
        if len(set(names)) != len(names):
            raise ValueError("user names must be unique")
        self.user_rates = np.asarray(event.arrival_rates, dtype=float)
        self.user_names = names
        self._user_seq = max(self._user_seq, len(names))

    def _set_utilization(self, event: SetUtilization) -> None:
        demand = self.total_demand
        if demand <= 0.0:
            return  # no users to rescale; the target applies once they arrive
        target = event.utilization * self.nominal_capacity
        self.user_rates = self.user_rates * (target / demand)

    def _set_online(self, computer: int, *, online: bool) -> None:
        self._check_computer(computer)
        self.online[computer] = online

    def _check_computer(self, computer: int) -> None:
        if not 0 <= computer < self.n_computers:
            raise ValueError(
                f"computer index {computer} outside the nominal fleet "
                f"(0..{self.n_computers - 1})"
            )

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------
    def effective_system(self) -> DistributedSystem:
        """The game on the online computers and current users.

        Raises
        ------
        CapacityExhausted
            When the offered load is not strictly below the online
            capacity (including the no-survivors case) — the typed
            degraded-hold signal, never an infeasible solver input.
        ValueError
            When there are no users (the engine treats that epoch as
            idle and never asks for a system).
        """
        if self.n_users == 0:
            raise ValueError("no users: the idle state has no game to solve")
        capacity = self.online_capacity
        offered = self.total_demand
        if not offered < capacity:
            raise CapacityExhausted(offered, capacity, self.offline_indices)
        names = tuple(
            name
            for name, alive in zip(self.computer_names, self.online)
            if alive
        )
        return DistributedSystem(
            service_rates=self.service_rates[self.online],
            arrival_rates=self.user_rates,
            computer_names=names,
            user_names=self.user_names,
        )

    def full_system(self) -> DistributedSystem:
        """The game at nominal fleet width (offline computers included).

        Used to express profiles/simulations over the whole fleet; only
        constructible while the offered load fits the nominal capacity.
        """
        if self.n_users == 0:
            raise ValueError("no users: the idle state has no game to solve")
        return DistributedSystem(
            service_rates=self.service_rates,
            arrival_rates=self.user_rates,
            computer_names=self.computer_names,
            user_names=self.user_names,
        )
