"""repro — noncooperative game-theoretic load balancing.

A complete, production-quality reproduction of

    Daniel Grosu and Anthony T. Chronopoulos,
    "A Game-Theoretic Model and Algorithm for Load Balancing in
    Distributed Systems", Proc. IPDPS 2002 (APDCM workshop).

The package models a heterogeneous distributed system of M/M/1 computers
shared by selfish users, computes each user's exact best response (the
paper's OPTIMAL algorithm), iterates best replies to the Nash equilibrium
(the NASH distributed algorithm, with both the NASH_0 and NASH_P
initializations), and evaluates the equilibrium against the classical
baselines — proportional (PS), globally optimal (GOS) and individually
optimal / Wardrop (IOS) — on expected response time and Jain's fairness
index, exactly as in the paper's Section 4.

Quickstart
----------
>>> from repro import paper_table1_system, compute_nash_equilibrium
>>> system = paper_table1_system(utilization=0.6)
>>> result = compute_nash_equilibrium(system)
>>> result.converged
True

Subpackages
-----------
``repro.core``
    System model, strategy profiles, the OPTIMAL best-response solver,
    NASH best-reply dynamics, equilibrium verification.
``repro.schemes``
    The NASH scheme and the PS/GOS/IOS baselines plus a Stackelberg
    extension, behind one interface.
``repro.queueing``
    M/M/1 analytics, fairness and performance metrics, stability.
``repro.simengine``
    Discrete-event simulation engine (the reproduction's substitute for
    the paper's Sim++) validating the analytic model.
``repro.distributed``
    In-process message-passing runtime executing the NASH algorithm as
    the ring protocol of the paper's Section 3.
``repro.workloads``
    Table-1 and heterogeneity-sweep system generators, churn traces.
``repro.engine``
    Online equilibrium engine: churn-resilient service mode with
    incremental re-equilibration and SLA accounting.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

from repro.core import (
    BestResponse,
    CapacityExhausted,
    DistributedSystem,
    EquilibriumCertificate,
    NashResult,
    NashSolver,
    StrategyProfile,
    best_response,
    best_response_regrets,
    compute_nash_equilibrium,
    degraded_equilibrium,
    is_nash_equilibrium,
    optimal_fractions,
    run_dynamic_balancing,
    verify_equilibrium,
)
from repro.queueing import (
    fairness_index,
    overall_response_time,
    price_of_anarchy,
)
from repro.schemes import (
    GlobalOptimalScheme,
    IndividualOptimalScheme,
    LoadBalancingScheme,
    NashScheme,
    ProportionalScheme,
    SchemeResult,
    StackelbergScheme,
    standard_schemes,
)
from repro.engine import (
    CapacityChange,
    ComputerFailure,
    ComputerReopen,
    EngineConfig,
    EngineRun,
    EpochReport,
    FleetState,
    OnlineEquilibriumEngine,
    PhiDrift,
    SLAPolicy,
    SLAReport,
    SetDemand,
    SetUtilization,
    UserArrival,
    UserDeparture,
)
from repro.game import LoadBalancingGame
from repro.workloads import (
    day_in_production_trace,
    paper_table1_system,
    skewed_system,
    table1_service_rates,
)

__version__ = "1.0.0"

__all__ = [
    "BestResponse",
    "CapacityExhausted",
    "DistributedSystem",
    "EquilibriumCertificate",
    "NashResult",
    "NashSolver",
    "StrategyProfile",
    "best_response",
    "best_response_regrets",
    "compute_nash_equilibrium",
    "degraded_equilibrium",
    "is_nash_equilibrium",
    "optimal_fractions",
    "run_dynamic_balancing",
    "verify_equilibrium",
    "fairness_index",
    "overall_response_time",
    "price_of_anarchy",
    "GlobalOptimalScheme",
    "IndividualOptimalScheme",
    "LoadBalancingScheme",
    "NashScheme",
    "ProportionalScheme",
    "SchemeResult",
    "StackelbergScheme",
    "standard_schemes",
    "LoadBalancingGame",
    "CapacityChange",
    "ComputerFailure",
    "ComputerReopen",
    "EngineConfig",
    "EngineRun",
    "EpochReport",
    "FleetState",
    "OnlineEquilibriumEngine",
    "PhiDrift",
    "SLAPolicy",
    "SLAReport",
    "SetDemand",
    "SetUtilization",
    "UserArrival",
    "UserDeparture",
    "day_in_production_trace",
    "paper_table1_system",
    "skewed_system",
    "table1_service_rates",
    "__version__",
]
