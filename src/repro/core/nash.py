"""NASH — the distributed greedy best-reply algorithm (paper Sec. 3).

Users take turns, round-robin, replacing their strategy with the exact
best response (the OPTIMAL algorithm) against the current strategies of
everyone else.  A sweep accumulates ``norm += |D_j^{(l)} - D_j^{(l-1)}|``
over the users; the iteration stops once a full sweep moves the users'
expected response times by less than the acceptance tolerance ``eps``.

Two initializations from the paper's Sec. 4.2.1:

* ``"zero"`` (**NASH_0**) — the all-zero profile; the first sweep builds
  the initial allocation with user 1 seeing an idle system.
* ``"proportional"`` (**NASH_P**) — every user starts from the
  proportional split ``s_ji = mu_i / sum mu_k``, which is near the
  equilibrium and empirically halves the iteration count (Figures 2-3).

This module is the *sequential* driver; :mod:`repro.distributed` executes
the same algorithm as a message-passing ring protocol and must produce
identical iterates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_MAX_SWEEPS",
    "Initialization",
    "UpdateOrder",
    "NashResult",
    "NashSolver",
    "compute_nash_equilibrium",
    "initial_profile",
]

#: Default acceptance tolerance ``eps`` on the per-sweep norm.
DEFAULT_TOLERANCE = 1e-6
#: Default cap on best-reply sweeps before declaring non-convergence.
DEFAULT_MAX_SWEEPS = 500

Initialization = Literal["zero", "proportional", "uniform"]
UpdateOrder = Literal["roundrobin", "random", "simultaneous"]


def initial_profile(
    system: DistributedSystem, init: Initialization | StrategyProfile
) -> StrategyProfile:
    """Materialize an initialization choice into a concrete profile."""
    if isinstance(init, StrategyProfile):
        if init.fractions.shape != (system.n_users, system.n_computers):
            raise ValueError("initial profile shape does not match the system")
        return init
    if init == "zero":
        return StrategyProfile.zeros(system.n_users, system.n_computers)
    if init == "proportional":
        return StrategyProfile.proportional(system)
    if init == "uniform":
        return StrategyProfile.uniform(system.n_users, system.n_computers)
    raise ValueError(f"unknown initialization {init!r}")


@dataclass(frozen=True)
class NashResult:
    """Outcome of the best-reply iteration.

    Attributes
    ----------
    profile:
        The final strategy profile (the Nash equilibrium on convergence).
    converged:
        Whether the sweep norm fell below the tolerance within the sweep
        budget.
    iterations:
        Number of completed sweeps (one sweep = every user updates once;
        this is the x-axis of the paper's Figure 2 and the y-axis of
        Figure 3).
    norm_history:
        Sweep norm after each sweep, ``norm_history[l] = sum_j
        |D_j^{(l+1)} - D_j^{(l)}|``.
    user_times:
        Per-user expected response times under the final profile.
    profile_history:
        Profiles after each sweep (present only when recorded).
    """

    profile: StrategyProfile
    converged: bool
    iterations: int
    norm_history: np.ndarray
    user_times: np.ndarray
    profile_history: tuple[StrategyProfile, ...] = field(default=())

    @property
    def final_norm(self) -> float:
        return float(self.norm_history[-1]) if self.norm_history.size else 0.0


@dataclass(frozen=True)
class NashSolver:
    """Configured best-reply solver.

    Parameters
    ----------
    tolerance:
        Acceptance tolerance ``eps`` on the per-sweep norm.
    max_sweeps:
        Sweep budget; exceeding it returns ``converged=False`` rather than
        raising, because partial profiles remain informative (the paper
        notes convergence for >2 users is an open problem, although every
        experiment here and in the paper converges).
    record_history:
        Keep a copy of the profile after every sweep (needed by the
        convergence experiments, off by default to save memory).
    order:
        Update schedule within a sweep.  ``"roundrobin"`` is the paper's
        algorithm (users update in index order, each seeing the others'
        freshest strategies — Gauss-Seidel).  ``"random"`` permutes the
        order every sweep (needs ``seed``), probing the paper's open question
        about schedule-independence of convergence.  ``"simultaneous"``
        has every user best-respond to the *previous* sweep's profile
        (Jacobi); it can overshoot and is included as an ablation.
    seed:
        RNG seed for the ``"random"`` order (ignored otherwise).
    """

    tolerance: float = DEFAULT_TOLERANCE
    max_sweeps: int = DEFAULT_MAX_SWEEPS
    record_history: bool = False
    order: UpdateOrder = "roundrobin"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")
        if self.order not in ("roundrobin", "random", "simultaneous"):
            raise ValueError(f"unknown update order {self.order!r}")

    def solve(
        self,
        system: DistributedSystem,
        init: Initialization | StrategyProfile = "proportional",
    ) -> NashResult:
        """Run best-reply sweeps from the given initialization."""
        profile = initial_profile(system, init)
        fractions = profile.fractions.copy()
        m = system.n_users
        rng = np.random.default_rng(self.seed) if self.order == "random" else None

        # D_j^{(0)}: zero for users with no allocation yet (NASH_0), the
        # actual expected time otherwise.  An initial profile that
        # conserves flow but overloads some computer (e.g. a uniform split
        # on a heterogeneous system) has no finite expected times; treat it
        # like NASH_0 for norm purposes — the first sweep repairs it.
        last_times = np.zeros(m)
        if np.allclose(fractions.sum(axis=1), 1.0):
            try:
                last_times = system.user_response_times(fractions)
            except ValueError:
                pass

        # Hot loop: the best responses are computed on the raw fraction
        # matrix (identical arithmetic to best_response(), minus the
        # per-update StrategyProfile construction the profiler flagged).
        mu = system.service_rates
        phi = system.arrival_rates

        def reply_for(user: int, matrix: np.ndarray):
            lam = phi @ matrix
            available = mu - (lam - matrix[user] * phi[user])
            return optimal_fractions(available, float(phi[user]))

        norms: list[float] = []
        history: list[StrategyProfile] = []
        converged = False
        for _sweep in range(self.max_sweeps):
            norm = 0.0
            if self.order == "simultaneous":
                # Jacobi: everyone responds to the previous sweep's profile.
                snapshot = fractions.copy()
                for j in range(m):
                    reply = reply_for(j, snapshot)
                    fractions[j] = reply.fractions
                    norm += abs(reply.expected_response_time - last_times[j])
                    last_times[j] = reply.expected_response_time
            else:
                schedule = (
                    rng.permutation(m) if rng is not None else range(m)
                )
                for j in schedule:
                    reply = reply_for(j, fractions)
                    fractions[j] = reply.fractions
                    norm += abs(reply.expected_response_time - last_times[j])
                    last_times[j] = reply.expected_response_time
            norms.append(norm)
            if self.record_history:
                history.append(StrategyProfile(fractions.copy()))
            if norm <= self.tolerance:
                converged = True
                break

        final = StrategyProfile(fractions)
        try:
            user_times = system.user_response_times(final.fractions)
        except ValueError:
            # Only reachable with the simultaneous (Jacobi) order, which
            # can overshoot into an unstable joint profile mid-oscillation.
            user_times = np.full(m, np.inf)
            converged = False
        return NashResult(
            profile=final,
            converged=converged,
            iterations=len(norms),
            norm_history=np.asarray(norms, dtype=float),
            user_times=user_times,
            profile_history=tuple(history),
        )


def compute_nash_equilibrium(
    system: DistributedSystem,
    *,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    record_history: bool = False,
) -> NashResult:
    """One-call façade over :class:`NashSolver`.

    >>> from repro.workloads import paper_table1_system
    >>> result = compute_nash_equilibrium(paper_table1_system(utilization=0.6))
    >>> result.converged
    True
    """
    solver = NashSolver(
        tolerance=tolerance, max_sweeps=max_sweeps, record_history=record_history
    )
    return solver.solve(system, init)
