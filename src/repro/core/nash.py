"""NASH — the distributed greedy best-reply algorithm (paper Sec. 3).

Users take turns, round-robin, replacing their strategy with the exact
best response (the OPTIMAL algorithm) against the current strategies of
everyone else.  A sweep accumulates ``norm += |D_j^{(l)} - D_j^{(l-1)}|``
over the users; the iteration stops once a full sweep moves the users'
expected response times by less than the acceptance tolerance ``eps``.

Two initializations from the paper's Sec. 4.2.1:

* ``"zero"`` (**NASH_0**) — the all-zero profile; the first sweep builds
  the initial allocation with user 1 seeing an idle system.
* ``"proportional"`` (**NASH_P**) — every user starts from the
  proportional split ``s_ji = mu_i / sum mu_k``, which is near the
  equilibrium and empirically halves the iteration count (Figures 2-3).

This module is the *sequential* driver; :mod:`repro.distributed` executes
the same algorithm as a message-passing ring protocol and must produce
identical iterates.

Performance (see docs/PERFORMANCE.md): the sweep maintains the aggregate
flow vector ``lam = phi @ fractions`` incrementally with a rank-1 delta
per best reply instead of recomputing it per user, dropping a sweep from
``O(m^2 n)`` to ``O(m n log n)``; each Gauss-Seidel best reply runs
through a fused low-overhead kernel, and the ``"simultaneous"`` (Jacobi)
order best-responds *all* users in one :func:`optimal_fractions_batch`
call.  The original driver is preserved verbatim in
:mod:`repro.core.reference`; parity tests pin the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Literal

import numpy as np

from repro.core.best_response import optimal_fractions, optimal_fractions_batch
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.sampled import (
    SampleCertificate,
    sampled_best_reply,
    sampled_best_reply_batch,
)
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import InfeasibleDemand
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_MAX_SWEEPS",
    "Initialization",
    "UpdateOrder",
    "NashResult",
    "NashSolver",
    "compute_nash_equilibrium",
    "initial_profile",
]

#: Default acceptance tolerance ``eps`` on the per-sweep norm.
DEFAULT_TOLERANCE = 1e-6
#: Default cap on best-reply sweeps before declaring non-convergence.
DEFAULT_MAX_SWEEPS = 500

Initialization = Literal["zero", "proportional", "uniform"]
UpdateOrder = Literal["roundrobin", "random", "simultaneous"]


def initial_profile(
    system: DistributedSystem, init: Initialization | StrategyProfile
) -> StrategyProfile:
    """Materialize an initialization choice into a concrete profile."""
    if isinstance(init, StrategyProfile):
        if init.fractions.shape != (system.n_users, system.n_computers):
            raise ValueError("initial profile shape does not match the system")
        return init
    if init == "zero":
        return StrategyProfile.zeros(system.n_users, system.n_computers)
    if init == "proportional":
        return StrategyProfile.proportional(system)
    if init == "uniform":
        return StrategyProfile.uniform(system.n_users, system.n_computers)
    raise ValueError(f"unknown initialization {init!r}")


def _fused_best_reply_inplace(
    mu: np.ndarray,
    job_rate: float,
    own: np.ndarray,
    lam: np.ndarray,
    avail: np.ndarray,
    thr: np.ndarray,
) -> float:
    """One OPTIMAL best reply with in-place aggregate bookkeeping.

    ``own`` is the user's flow row inside the sweep's ``(m, n)`` flow
    matrix and ``lam`` the running aggregate ``sum_j flows_j``; both are
    updated in place (``lam += new_own - old_own``, the rank-1 delta that
    makes the sweep ``O(m n log n)``).  ``avail``/``thr`` are preallocated
    ``(n,)`` scratch buffers.  Returns the user's new expected response
    time ``D_j``.

    The arithmetic mirrors :func:`repro.core.waterfill.sqrt_waterfill`
    with the per-call overhead (validation, dataclasses, defensive
    branches) stripped; whenever some computer has no headroom left —
    possible only from an infeasible initialization such as a uniform
    split on a strongly heterogeneous system — it falls back to the
    defensive scalar solver, which handles unavailable computers.
    """
    np.subtract(mu, lam, out=avail)
    avail += own
    if np.any(avail <= 0.0):
        # Defensive path: unavailable computers present.
        reply = optimal_fractions(avail, job_rate)
        lam -= own
        np.multiply(reply.fractions, job_rate, out=own)
        lam += own
        return float(reply.expected_response_time)

    order = np.argsort(-avail, kind="stable")
    a_sorted = avail[order]
    roots = np.sqrt(a_sorted)
    cum_a = np.cumsum(a_sorted)
    cum_r = np.cumsum(roots)
    if job_rate >= cum_a[-1]:
        raise InfeasibleDemand(job_rate, float(cum_a[-1]))

    # Threshold for every candidate support prefix, largest valid prefix.
    np.subtract(cum_a, job_rate, out=thr)
    thr /= cum_r
    valid = roots > thr
    cut = a_sorted.size - int(valid[::-1].argmax())

    t = thr[cut - 1]
    x = a_sorted[:cut] - t * roots[:cut]
    np.maximum(x, 0.0, out=x)
    x *= job_rate / x.sum()
    # D_j = sum_i s_ji / (a_i - x_i) = (1/phi_j) sum_i x_i / (a_i - x_i);
    # stability a_i - x_i > 0 holds by construction of the support
    # (x_i < a_i on it), so the inline form is safe here.
    gap = a_sorted[:cut] - x
    d_j = float((x / gap).sum()) / job_rate  # reprolint: allow=R003 hot path; gap > 0 proven by the water-fill support

    lam -= own
    own[:] = 0.0
    own[order[:cut]] = x
    lam += own
    return d_j


@dataclass(frozen=True)
class NashResult:
    """Outcome of the best-reply iteration.

    Attributes
    ----------
    profile:
        The final strategy profile (the Nash equilibrium on convergence).
    converged:
        Whether the sweep norm fell below the tolerance within the sweep
        budget.
    iterations:
        Number of completed sweeps (one sweep = every user updates once;
        this is the x-axis of the paper's Figure 2 and the y-axis of
        Figure 3).
    norm_history:
        Sweep norm after each sweep, ``norm_history[l] = sum_j
        |D_j^{(l+1)} - D_j^{(l)}|``.
    user_times:
        Per-user expected response times under the final profile.
    profile_history:
        Profiles after each sweep (present only when recorded).
    sample:
        The :class:`~repro.core.sampled.SampleCertificate` of a
        ``sample_k`` solve — poll spend, sampled norm and the *true*
        global epsilon — or ``None`` for a full-information solve.
    """

    profile: StrategyProfile
    converged: bool
    iterations: int
    norm_history: np.ndarray
    user_times: np.ndarray
    profile_history: tuple[StrategyProfile, ...] = field(default=())
    sample: SampleCertificate | None = None

    @property
    def final_norm(self) -> float:
        return float(self.norm_history[-1]) if self.norm_history.size else 0.0


@dataclass(frozen=True)
class NashSolver:
    """Configured best-reply solver.

    Parameters
    ----------
    tolerance:
        Acceptance tolerance ``eps`` on the per-sweep norm.
    max_sweeps:
        Sweep budget; exceeding it returns ``converged=False`` rather than
        raising, because partial profiles remain informative (the paper
        notes convergence for >2 users is an open problem, although every
        experiment here and in the paper converges).
    record_history:
        Keep a copy of the profile after every sweep (needed by the
        convergence experiments, off by default to save memory).
    order:
        Update schedule within a sweep.  ``"roundrobin"`` is the paper's
        algorithm (users update in index order, each seeing the others'
        freshest strategies — Gauss-Seidel).  ``"random"`` permutes the
        order every sweep (needs ``seed``), probing the paper's open question
        about schedule-independence of convergence.  ``"simultaneous"``
        has every user best-respond to the *previous* sweep's profile
        (Jacobi); it can overshoot and is included as an ablation.
    seed:
        RNG seed for the ``"random"`` order (ignored otherwise) and for
        the per-reply sample draws of ``sample_k`` mode.
    sample_k:
        ``None`` (default) runs the paper's full-information best
        replies.  An integer ``k`` switches to power-of-k sampled
        replies (:mod:`repro.core.sampled`): each user best-responds
        over its current support plus ``k`` seeded random probes per
        sweep.  ``k >= n`` takes the exact full-information code path —
        bit-for-bit identical profiles — while still attaching the
        :class:`~repro.core.sampled.SampleCertificate` with the
        full-information poll baseline.
    """

    tolerance: float = DEFAULT_TOLERANCE
    max_sweeps: int = DEFAULT_MAX_SWEEPS
    record_history: bool = False
    order: UpdateOrder = "roundrobin"
    seed: int = 0
    sample_k: int | None = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")
        if self.order not in ("roundrobin", "random", "simultaneous"):
            raise ValueError(f"unknown update order {self.order!r}")
        if self.sample_k is not None and self.sample_k < 1:
            raise ValueError("sample_k must be at least 1 (or None)")

    def solve(
        self,
        system: DistributedSystem,
        init: Initialization | StrategyProfile = "proportional",
        *,
        tracer: Tracer | None = None,
    ) -> NashResult:
        """Run best-reply sweeps from the given initialization.

        ``tracer`` (default: the ambient tracer, disabled unless installed
        with :func:`repro.telemetry.use_tracer`) records one
        ``solver.sweep`` event per sweep — the norm, the per-user regrets
        ``|D_j^{(l)} - D_j^{(l-1)}|`` and the kernel wall time — plus
        ``solver.start``/``solver.done`` bracketing events.  With the
        default no-op sink the instrumentation reduces to one branch per
        sweep (see docs/OBSERVABILITY.md for the overhead guarantee).
        """
        profile = initial_profile(system, init)
        fractions = profile.fractions.copy()
        m, n = system.n_users, system.n_computers
        rng = np.random.default_rng(self.seed) if self.order == "random" else None
        tracer = tracer if tracer is not None else current_tracer()
        trace = tracer.enabled
        if trace:
            tracer.emit(
                "solver.start",
                order=self.order,
                users=m,
                computers=n,
                tolerance=self.tolerance,
                max_sweeps=self.max_sweeps,
            )

        # D_j^{(0)}: zero for users with no allocation yet (NASH_0), the
        # actual expected time otherwise.  An initial profile that
        # conserves flow but overloads some computer (e.g. a uniform split
        # on a heterogeneous system) has no finite expected times; treat it
        # like NASH_0 for norm purposes — the first sweep repairs it.
        last_times = np.zeros(m)
        if np.allclose(fractions.sum(axis=1), 1.0):
            try:
                last_times = system.user_response_times(fractions)
            except ValueError:
                pass

        mu = system.service_rates
        phi = system.arrival_rates

        # Hot loop state: the sweep works on the (m, n) flow matrix and the
        # running aggregate ``lam = sum_j flows_j``, updated with a rank-1
        # delta per best reply instead of a full O(m n) recomputation.
        flows = fractions * phi[:, None]
        avail = np.empty(n)
        thr = np.empty(n)

        # Power-of-k mode: k < n restricts every reply to support ∪
        # sample; k >= n runs the exact path below unchanged (bit-for-bit
        # parity) and only the certificate accounting differs.
        sampling = self.sample_k is not None and self.sample_k < n
        total_polls = 0

        norms: list[float] = []
        history: list[StrategyProfile] = []
        converged = False
        for _sweep in range(self.max_sweeps):
            # Refreshing the aggregate once per sweep (O(m n), dwarfed by
            # the m best replies) keeps the incremental round-off from
            # drifting across sweeps, preserving parity with the ring
            # protocol and the reference driver.
            lam = flows.sum(axis=0)
            sweep_started = perf_counter() if trace else 0.0
            regrets = np.zeros(m) if trace else None
            if self.order == "simultaneous":
                # Jacobi: everyone responds to the previous sweep's profile,
                # so all m best replies batch into one vectorized call
                # (masked to the per-user reply sets in sampled mode).
                available = (mu - lam)[None, :] + flows
                if sampling:
                    batch = sampled_best_reply_batch(
                        available,
                        flows,
                        phi,
                        seed=self.seed,
                        sweep=_sweep,
                        k=self.sample_k,
                    )
                    flows[:] = batch.flows
                    times = batch.expected_response_times
                    total_polls += batch.polls
                else:
                    replies = optimal_fractions_batch(available, phi)
                    np.multiply(replies.fractions, phi[:, None], out=flows)
                    times = replies.expected_response_times
                deltas = np.abs(times - last_times)
                norm = float(deltas.sum())
                if trace:
                    regrets = deltas
                last_times = times
            else:
                schedule = (
                    rng.permutation(m) if rng is not None else range(m)
                )
                norm = 0.0
                if sampling:
                    for j in schedule:
                        np.subtract(mu, lam, out=avail)
                        avail += flows[j]
                        rep = sampled_best_reply(
                            avail,
                            flows[j],
                            float(phi[j]),
                            seed=self.seed,
                            sweep=_sweep,
                            index=int(j),
                            k=self.sample_k,
                        )
                        total_polls += rep.polls
                        lam += rep.flows - flows[j]
                        flows[j] = rep.flows
                        d_j = rep.expected_response_time
                        delta = abs(d_j - last_times[j])
                        norm += delta
                        if regrets is not None:
                            regrets[j] = delta
                        last_times[j] = d_j
                else:
                    for j in schedule:
                        d_j = _fused_best_reply_inplace(
                            mu, float(phi[j]), flows[j], lam, avail, thr
                        )
                        delta = abs(d_j - last_times[j])
                        norm += delta
                        if regrets is not None:
                            regrets[j] = delta
                        last_times[j] = d_j
            norms.append(norm)
            if trace:
                elapsed = perf_counter() - sweep_started
                tracer.emit(
                    "solver.sweep",
                    index=len(norms) - 1,
                    sweep=len(norms),
                    norm=norm,
                    elapsed_s=elapsed,
                    regrets=regrets,
                )
                tracer.count("solver.sweeps")
                tracer.count("solver.best_replies", m)
                tracer.observe("solver.sweep_seconds", elapsed)
            if self.record_history:
                history.append(StrategyProfile(flows / phi[:, None]))
            if norm <= self.tolerance:
                converged = True
                break

        final = StrategyProfile(flows / phi[:, None])
        try:
            user_times = system.user_response_times(final.fractions)
        except ValueError:
            # Only reachable with the simultaneous (Jacobi) order, which
            # can overshoot into an unstable joint profile mid-oscillation.
            user_times = np.full(m, np.inf)
            converged = False
        sample: SampleCertificate | None = None
        if self.sample_k is not None:
            if not sampling:
                # Full-information bypass: every reply observed all n
                # computers — the poll baseline EXT11 measures against.
                total_polls = len(norms) * m * n
            try:
                epsilon = float(best_response_regrets(system, final).epsilon)
            except ValueError:
                epsilon = float("inf")
            sample = SampleCertificate(
                k=min(self.sample_k, n),
                n_computers=n,
                sweeps=len(norms),
                polls=total_polls,
                sampled_norm=norms[-1] if norms else 0.0,
                epsilon=epsilon,
            )
            if trace:
                tracer.emit(
                    "solver.sample",
                    k=sample.k,
                    computers=n,
                    sweeps=sample.sweeps,
                    polls=sample.polls,
                    sampled_norm=sample.sampled_norm,
                    epsilon=sample.epsilon,
                )
        if trace:
            tracer.emit(
                "solver.done",
                converged=converged,
                iterations=len(norms),
                final_norm=norms[-1] if norms else 0.0,
            )
        return NashResult(
            profile=final,
            converged=converged,
            iterations=len(norms),
            norm_history=np.asarray(norms, dtype=float),
            user_times=user_times,
            profile_history=tuple(history),
            sample=sample,
        )


def compute_nash_equilibrium(
    system: DistributedSystem,
    *,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    record_history: bool = False,
) -> NashResult:
    """One-call façade over :class:`NashSolver`.

    >>> from repro.workloads import paper_table1_system
    >>> result = compute_nash_equilibrium(paper_table1_system(utilization=0.6))
    >>> result.converged
    True
    """
    solver = NashSolver(
        tolerance=tolerance, max_sweeps=max_sweeps, record_history=record_history
    )
    return solver.solve(system, init)
