"""The OPTIMAL algorithm — a user's best response (paper Sec. 2).

Given the strategies of all other users, user ``j`` faces a single-user
allocation problem over computers whose *available* processing rates are
``a_i = mu_i - sum_{k != j} s_ki phi_k``.  Theorem 2.1 of the paper gives
the closed-form water-filling solution; the OPTIMAL algorithm computes it
in ``O(n log n)``:

1. sort computers by available rate, descending;
2. shrink the candidate support from the slowest end while the threshold
   ``t = (sum a_i - phi_j) / (sum sqrt(a_i))`` would drive the slowest
   included computer negative;
3. assign ``s_ji = (a_i - t sqrt(a_i)) / phi_j`` on the final support.

Theorem 2.2 proves this solves the (convex) optimization problem OPT_j
exactly, so the result is the user's *global* best response, not a local
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import WaterfillResult, sqrt_waterfill
from repro.queueing.mm1 import expected_response_time as mm1_response_time

__all__ = [
    "BestResponse",
    "optimal_fractions",
    "best_response",
    "best_response_value",
]


@dataclass(frozen=True)
class BestResponse:
    """Result of the OPTIMAL algorithm for one user.

    Attributes
    ----------
    fractions:
        The user's optimal strategy row ``(s_j1 .. s_jn)``.
    expected_response_time:
        The user's expected response time ``D_j`` under its new strategy
        (with the opponents' strategies held fixed).
    support:
        Indices of computers receiving a positive fraction.
    threshold:
        The water-fill threshold ``t`` of Theorem 2.1.
    """

    fractions: np.ndarray
    expected_response_time: float
    support: np.ndarray
    threshold: float


def optimal_fractions(available_rates, job_rate: float) -> BestResponse:
    """Run OPTIMAL on explicit inputs (paper's pseudocode signature).

    Parameters
    ----------
    available_rates:
        ``a_i`` — processing rate of each computer left over for this user
        once all other users' flows are subtracted.
    job_rate:
        ``phi_j`` — the user's total job arrival rate; must be strictly
        below ``sum(max(a_i, 0))``.

    Returns
    -------
    BestResponse
        The optimal fractions and the resulting expected response time.
    """
    a = np.asarray(available_rates, dtype=float)
    if job_rate <= 0.0:
        raise ValueError("job rate must be strictly positive")
    fill: WaterfillResult = sqrt_waterfill(a, job_rate)
    fractions = fill.loads / job_rate
    times = mm1_response_time(fill.loads[fill.support], a[fill.support])
    d_j = float(fractions[fill.support] @ times)
    return BestResponse(
        fractions=fractions,
        expected_response_time=d_j,
        support=fill.support,
        threshold=fill.threshold,
    )


def best_response(
    system: DistributedSystem, profile: StrategyProfile, user: int
) -> BestResponse:
    """Best response of ``user`` against the other rows of ``profile``.

    The opponents' strategies are read from ``profile``; the user's own
    current row is irrelevant (it is replaced wholesale).
    """
    available = system.available_rates(profile.fractions, user)
    return optimal_fractions(available, float(system.arrival_rates[user]))


def best_response_value(
    system: DistributedSystem, profile: StrategyProfile, user: int
) -> float:
    """The lowest expected response time ``user`` can achieve unilaterally."""
    return best_response(system, profile, user).expected_response_time
