"""The OPTIMAL algorithm — a user's best response (paper Sec. 2).

Given the strategies of all other users, user ``j`` faces a single-user
allocation problem over computers whose *available* processing rates are
``a_i = mu_i - sum_{k != j} s_ki phi_k``.  Theorem 2.1 of the paper gives
the closed-form water-filling solution; the OPTIMAL algorithm computes it
in ``O(n log n)``:

1. sort computers by available rate, descending;
2. shrink the candidate support from the slowest end while the threshold
   ``t = (sum a_i - phi_j) / (sum sqrt(a_i))`` would drive the slowest
   included computer negative;
3. assign ``s_ji = (a_i - t sqrt(a_i)) / phi_j`` on the final support.

Theorem 2.2 proves this solves the (convex) optimization problem OPT_j
exactly, so the result is the user's *global* best response, not a local
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import (
    InfeasibleDemand,
    WaterfillResult,
    sqrt_waterfill,
    sqrt_waterfill_batch,
)
from repro.queueing.mm1 import expected_response_time as mm1_response_time

__all__ = [
    "BestResponse",
    "BatchBestResponse",
    "InfeasibleDemand",
    "optimal_fractions",
    "optimal_fractions_batch",
    "best_response",
    "best_response_value",
]


@dataclass(frozen=True)
class BestResponse:
    """Result of the OPTIMAL algorithm for one user.

    Attributes
    ----------
    fractions:
        The user's optimal strategy row ``(s_j1 .. s_jn)``.
    expected_response_time:
        The user's expected response time ``D_j`` under its new strategy
        (with the opponents' strategies held fixed).
    support:
        Indices of computers receiving a positive fraction.
    threshold:
        The water-fill threshold ``t`` of Theorem 2.1.
    """

    fractions: np.ndarray
    expected_response_time: float
    support: np.ndarray
    threshold: float


def optimal_fractions(available_rates, job_rate: float) -> BestResponse:
    """Run OPTIMAL on explicit inputs (paper's pseudocode signature).

    Parameters
    ----------
    available_rates:
        ``a_i`` — processing rate of each computer left over for this user
        once all other users' flows are subtracted.
    job_rate:
        ``phi_j`` — the user's total job arrival rate; must be strictly
        below ``sum(max(a_i, 0))``.

    Returns
    -------
    BestResponse
        The optimal fractions and the resulting expected response time.

    Raises
    ------
    InfeasibleDemand
        If ``job_rate`` is not strictly below the total positive available
        rate; the exception names both the demand and the capacity.
    """
    a = np.asarray(available_rates, dtype=float)
    if job_rate <= 0.0:
        raise ValueError("job rate must be strictly positive")
    fill: WaterfillResult = sqrt_waterfill(a, job_rate)
    fractions = fill.loads / job_rate
    times = mm1_response_time(fill.loads[fill.support], a[fill.support])
    d_j = float(fractions[fill.support] @ times)
    return BestResponse(
        fractions=fractions,
        expected_response_time=d_j,
        support=fill.support,
        threshold=fill.threshold,
    )


@dataclass(frozen=True)
class BatchBestResponse:
    """Results of the OPTIMAL algorithm for ``m`` users at once.

    Attributes
    ----------
    fractions:
        ``(m, n)`` matrix of per-user optimal strategy rows.
    expected_response_times:
        ``(m,)`` vector of each user's expected response time ``D_j``
        under its new strategy (opponents held fixed).
    support_mask:
        ``(m, n)`` boolean matrix of the optimal supports.
    thresholds:
        ``(m,)`` water-fill thresholds ``t_j`` of Theorem 2.1.
    """

    fractions: np.ndarray
    expected_response_times: np.ndarray
    support_mask: np.ndarray
    thresholds: np.ndarray


def optimal_fractions_batch(available_rates, job_rates) -> BatchBestResponse:
    """Run OPTIMAL for ``m`` independent users in one vectorized call.

    Row ``j`` of ``available_rates`` is user ``j``'s available-rate vector
    ``a_i = mu_i - sum_{k != j} s_ki phi_k``; ``job_rates[j]`` is its
    demand ``phi_j``.  Produces the same numbers as looping
    :func:`optimal_fractions` over the rows (to floating-point round-off)
    at a fraction of the cost — this is the kernel behind the Jacobi
    sweep of :class:`~repro.core.nash.NashSolver`, the vectorized
    equilibrium certificate and the scheme evaluation harness.

    Raises
    ------
    InfeasibleDemand
        If some user's demand cannot fit under its available capacity;
        carries the user index.
    """
    a = np.asarray(available_rates, dtype=float)
    d = np.asarray(job_rates, dtype=float)
    if a.ndim != 2:
        raise ValueError("available rates must be an (m, n) matrix")
    if np.any(d <= 0.0):
        raise ValueError("job rates must be strictly positive")
    fill = sqrt_waterfill_batch(a, d)
    fractions = fill.loads / d[:, None]
    mask = fill.support_mask
    # Expected times on each support through the audited M/M/1 helper;
    # off-support entries contribute nothing (zero fraction).
    times = np.zeros_like(fractions)
    times[mask] = mm1_response_time(fill.loads[mask], a[mask])
    expected = (fractions * times).sum(axis=1)
    return BatchBestResponse(
        fractions=fractions,
        expected_response_times=expected,
        support_mask=mask,
        thresholds=fill.thresholds,
    )


def best_response(
    system: DistributedSystem, profile: StrategyProfile, user: int
) -> BestResponse:
    """Best response of ``user`` against the other rows of ``profile``.

    The opponents' strategies are read from ``profile``; the user's own
    current row is irrelevant (it is replaced wholesale).
    """
    available = system.available_rates(profile.fractions, user)
    return optimal_fractions(available, float(system.arrival_rates[user]))


def best_response_value(
    system: DistributedSystem, profile: StrategyProfile, user: int
) -> float:
    """The lowest expected response time ``user`` can achieve unilaterally."""
    return best_response(system, profile, user).expected_response_time
