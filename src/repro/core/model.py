"""The distributed system model of the paper (Sec. 2).

A :class:`DistributedSystem` is a collection of ``n`` heterogeneous
computers, each an M/M/1 queue with service rate ``mu_i``, shared by ``m``
users generating jobs at Poisson rates ``phi_j``.  The object is an
immutable value type: solvers never mutate it, and derived quantities
(loads, response times, per-user costs) are computed from a strategy
profile on demand with vectorized numpy expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.queueing.mm1 import expected_response_time, total_delay
from repro.queueing.stability import assert_system_stable

__all__ = ["DistributedSystem"]


def _as_positive_vector(values, name: str) -> np.ndarray:
    arr = np.array(values, dtype=float, copy=True)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a nonempty 1-D vector")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    if np.any(arr <= 0.0):
        raise ValueError(f"{name} must be strictly positive")
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class DistributedSystem:
    """A heterogeneous distributed system shared by selfish users.

    Parameters
    ----------
    service_rates:
        ``mu`` — processing rate of each computer (jobs/second), length ``n``.
    arrival_rates:
        ``phi`` — job generation rate of each user (jobs/second), length
        ``m``.  The total must be strictly below ``sum(mu)``.

    Examples
    --------
    >>> system = DistributedSystem(service_rates=[10.0, 5.0],
    ...                            arrival_rates=[4.0, 2.0])
    >>> system.n_computers, system.n_users
    (2, 2)
    >>> round(system.system_utilization, 3)
    0.4
    """

    service_rates: np.ndarray
    arrival_rates: np.ndarray
    computer_names: tuple[str, ...] = field(default=())
    user_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        mu = _as_positive_vector(self.service_rates, "service_rates")
        phi = _as_positive_vector(self.arrival_rates, "arrival_rates")
        assert_system_stable(mu, phi)
        object.__setattr__(self, "service_rates", mu)
        object.__setattr__(self, "arrival_rates", phi)
        generated = (not self.computer_names, not self.user_names)
        object.__setattr__(self, "_default_names", generated)
        if generated[0]:
            object.__setattr__(
                self,
                "computer_names",
                tuple(f"computer-{i}" for i in range(mu.size)),
            )
        if generated[1]:
            object.__setattr__(
                self, "user_names", tuple(f"user-{j}" for j in range(phi.size))
            )
        if len(self.computer_names) != mu.size:
            raise ValueError("computer_names length must match service_rates")
        if len(self.user_names) != phi.size:
            raise ValueError("user_names length must match arrival_rates")

    # ------------------------------------------------------------------
    # Shape and aggregate properties
    # ------------------------------------------------------------------
    @property
    def n_computers(self) -> int:
        """Number of computers ``n``."""
        return int(self.service_rates.size)

    @property
    def n_users(self) -> int:
        """Number of users ``m``."""
        return int(self.arrival_rates.size)

    @property
    def has_default_names(self) -> tuple[bool, bool]:
        """Were (computer, user) names auto-generated at construction?

        A worker reconstructing a system from its rate vectors alone
        regenerates identical defaults, so payloads only need to carry
        names when this is ``(False, False)`` somewhere — at ``m = 10^6``
        the generated ``user-*`` tuple dwarfs the rate arrays in pickle
        bytes (see :mod:`repro.experiments.shm`).
        """
        return getattr(self, "_default_names", (False, False))

    @property
    def total_processing_rate(self) -> float:
        """Aggregate processing rate ``sum_i mu_i``."""
        return float(self.service_rates.sum())

    @property
    def total_arrival_rate(self) -> float:
        """Total job arrival rate ``Phi = sum_j phi_j``."""
        return float(self.arrival_rates.sum())

    @property
    def system_utilization(self) -> float:
        """``rho = Phi / sum_i mu_i`` — the x-axis of the paper's Figure 4."""
        return self.total_arrival_rate / self.total_processing_rate

    @property
    def speed_skewness(self) -> float:
        """``max_i mu_i / min_i mu_i`` (Tang & Chanson 2000) — Figure 6's x-axis."""
        mu = self.service_rates
        return float(mu.max() / mu.min())

    # ------------------------------------------------------------------
    # Profile-dependent quantities
    # ------------------------------------------------------------------
    def loads(self, fractions: np.ndarray) -> np.ndarray:
        """Aggregate flow into each computer: ``lambda_i = sum_j s_ji phi_j``.

        ``fractions`` is the ``(m, n)`` strategy matrix (rows are users).
        """
        s = np.asarray(fractions, dtype=float)
        if s.shape != (self.n_users, self.n_computers):
            raise ValueError(
                f"strategy matrix must have shape "
                f"({self.n_users}, {self.n_computers}), got {s.shape}"
            )
        return self.arrival_rates @ s

    def response_times(self, fractions: np.ndarray) -> np.ndarray:
        """Per-computer expected response time ``F_i = 1/(mu_i - lambda_i)``."""
        lam = self.loads(fractions)
        if np.any(self.service_rates - lam <= 0.0):
            raise ValueError("strategy profile violates per-computer stability")
        return expected_response_time(lam, self.service_rates)

    def user_response_times(self, fractions: np.ndarray) -> np.ndarray:
        """Per-user expected response time ``D_j = sum_i s_ji F_i`` (eq. 2)."""
        s = np.asarray(fractions, dtype=float)
        return s @ self.response_times(fractions)

    def overall_response_time(self, fractions: np.ndarray) -> float:
        """Traffic-weighted mean response time ``(1/Phi) sum_i lambda_i F_i``."""
        lam = self.loads(fractions)
        if np.any(self.service_rates - lam <= 0.0):
            raise ValueError("strategy profile violates per-computer stability")
        return float(total_delay(lam, self.service_rates).sum()
                     / self.total_arrival_rate)

    def available_rates(self, fractions: np.ndarray, user: int) -> np.ndarray:
        """Processing rate left for ``user`` once everyone else is placed.

        ``a_i = mu_i - sum_{k != user} s_ki phi_k`` — the quantity the
        OPTIMAL algorithm takes as input (paper Sec. 2).
        """
        s = np.asarray(fractions, dtype=float)
        if not 0 <= user < self.n_users:
            raise IndexError(f"user index {user} out of range")
        lam = self.loads(s)
        own = s[user] * self.arrival_rates[user]
        return self.service_rates - (lam - own)

    # ------------------------------------------------------------------
    # Derived systems
    # ------------------------------------------------------------------
    def with_utilization(self, rho: float) -> "DistributedSystem":
        """Rescale all user arrival rates so system utilization equals ``rho``.

        Relative traffic shares between users are preserved.  Used by the
        utilization sweeps of Figures 4 and 5.
        """
        if not 0.0 < rho < 1.0:
            raise ValueError("utilization must lie strictly inside (0, 1)")
        factor = rho * self.total_processing_rate / self.total_arrival_rate
        return DistributedSystem(
            service_rates=self.service_rates,
            arrival_rates=self.arrival_rates * factor,
            computer_names=self.computer_names,
            user_names=self.user_names,
        )

    def with_users(self, arrival_rates) -> "DistributedSystem":
        """Same computers, different user population."""
        return DistributedSystem(
            service_rates=self.service_rates,
            arrival_rates=np.asarray(arrival_rates, dtype=float),
            computer_names=self.computer_names,
        )

    def subsystem_seen_by(self, fractions: np.ndarray, user: int):
        """(available_rates, phi_user) — the single-user system of problem OPT_j.

        Computing user ``j``'s best response against fixed opponents reduces
        to solving a one-user allocation over computers with these available
        rates (paper Sec. 2, the reduction preceding Theorem 2.1).
        """
        return self.available_rates(fractions, user), float(self.arrival_rates[user])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedSystem(n_computers={self.n_computers}, "
            f"n_users={self.n_users}, "
            f"utilization={self.system_utilization:.3f})"
        )
