"""Frozen reference implementation of the NASH best-reply iteration.

This module preserves the straightforward O(m^2 * n) per-sweep driver the
repository originally shipped: every best reply recomputes the aggregate
flow vector ``phi @ fractions`` from scratch and every user is served by
the scalar water-fill.  It exists for two reasons:

* **parity** — the vectorized solver in :mod:`repro.core.nash`
  (incremental load accounting, fused per-user kernel, batched Jacobi
  sweep) must reproduce these iterates, norms and profiles to tight
  tolerances; the property tests in ``tests/core/test_nash_parity.py``
  enforce that on the paper's configurations and randomized instances;
* **benchmarking** — the perf-regression harness (``benchmarks/``) times
  this driver next to the optimized one and records the speedup in
  ``BENCH_nash.json``, so the win stays demonstrated, not anecdotal.

Do not optimize this module.  It is deliberately the slow, obviously
correct formulation; changing it silently moves the goalposts for both
the parity tests and the recorded speedups.
"""

from __future__ import annotations

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
    UpdateOrder,
    initial_profile,
)
from repro.core.strategy import StrategyProfile

__all__ = ["reference_solve"]


def reference_solve(
    system: DistributedSystem,
    init: Initialization | StrategyProfile = "proportional",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
    order: UpdateOrder = "roundrobin",
    seed: int = 0,
    record_history: bool = False,
) -> NashResult:
    """Run the original (unoptimized) best-reply sweeps.

    Semantics match :meth:`repro.core.nash.NashSolver.solve` exactly; the
    implementation recomputes ``phi @ fractions`` for every best reply
    instead of maintaining it incrementally.
    """
    profile = initial_profile(system, init)
    fractions = profile.fractions.copy()
    m = system.n_users
    rng = np.random.default_rng(seed) if order == "random" else None

    last_times = np.zeros(m)
    if np.allclose(fractions.sum(axis=1), 1.0):
        try:
            last_times = system.user_response_times(fractions)
        except ValueError:
            pass

    mu = system.service_rates
    phi = system.arrival_rates

    def reply_for(user: int, matrix: np.ndarray):
        lam = phi @ matrix
        available = mu - (lam - matrix[user] * phi[user])
        return optimal_fractions(available, float(phi[user]))

    norms: list[float] = []
    history: list[StrategyProfile] = []
    converged = False
    for _sweep in range(max_sweeps):
        norm = 0.0
        if order == "simultaneous":
            snapshot = fractions.copy()
            for j in range(m):
                reply = reply_for(j, snapshot)
                fractions[j] = reply.fractions
                norm += abs(reply.expected_response_time - last_times[j])
                last_times[j] = reply.expected_response_time
        else:
            schedule = rng.permutation(m) if rng is not None else range(m)
            for j in schedule:
                reply = reply_for(j, fractions)
                fractions[j] = reply.fractions
                norm += abs(reply.expected_response_time - last_times[j])
                last_times[j] = reply.expected_response_time
        norms.append(norm)
        if record_history:
            history.append(StrategyProfile(fractions.copy()))
        if norm <= tolerance:
            converged = True
            break

    final = StrategyProfile(fractions)
    try:
        user_times = system.user_response_times(final.fractions)
    except ValueError:
        user_times = np.full(m, np.inf)
        converged = False
    return NashResult(
        profile=final,
        converged=converged,
        iterations=len(norms),
        norm_history=np.asarray(norms, dtype=float),
        user_times=user_times,
        profile_history=tuple(history),
    )
