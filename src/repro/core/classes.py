"""User-class aggregation: million-user equilibria in class space.

The best reply of user ``j`` (paper Theorem 2.1) depends only on the
user's own job rate ``phi_j`` and the aggregate load the *other* users
put on each computer.  Users with identical ``phi`` therefore share one
equilibrium strategy by symmetry — the aggregation insight exploited by
Berenbrink et al. for weighted task classes — so an instance with
``m = 10^6`` users drawn from ``c`` distinct job rates collapses to a
``(c, n)`` problem with ``c << m``.  This module provides that collapse
end to end:

* :func:`aggregate_users` groups users into weighted
  :class:`ClassAggregation` classes — exact grouping by ``phi`` by
  default, with a relative-tolerance knob for nearly-identical rates —
  with weighted demand accounting (a class's demand is the sum of its
  members' rates; its representative per-member rate is the weighted
  mean);
* :class:`ClassNashSolver` runs the best-reply iteration entirely in
  class space with ``(c, n)`` state, reusing the batched water-fill
  kernels, so cost per sweep is ``O(c n log n)`` instead of
  ``O(m n log n)`` and memory ``O(c n)`` instead of ``O(m n)``;
* :func:`class_best_response_regrets` evaluates the *per-user*
  epsilon-Nash certificate in class space: every member of a class has
  the same regret, so ``c`` batched best responses certify all ``m``
  users (the epsilon-Nash early-stop knob of Chakraborty et al.'s
  approximate congestion games).

Exactness.  A class-uniform profile expanded by
:meth:`ClassAggregation.expand` puts identical rows on all members of a
class, so the expanded aggregate loads equal the class-space loads and
the class-space certificate *is* the user-space certificate (exactly for
exact grouping, up to the grouping tolerance otherwise).  With every
class a singleton the solver's arithmetic reduces bit-for-bit to
:class:`~repro.core.nash.NashSolver`'s — the parity tests pin this.

The sweep *norm* is user-weighted (``sum_k count_k |D_k^{(l)} -
D_k^{(l-1)}|``) so ``tolerance`` means the same thing it means for the
per-user solver on the expanded system.

See docs/PERFORMANCE.md ("Class-space solving") for when aggregation
wins and measured numbers; :mod:`repro.core.sharding` builds the
two-level sharded scheme on top of this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Literal

import numpy as np

from repro._typing import FloatArray
from repro.core.best_response import optimal_fractions, optimal_fractions_batch
from repro.core.jit import class_sweep_inplace, resolve_backend, sweep_kernel
from repro.core.model import DistributedSystem
from repro.core.nash import DEFAULT_MAX_SWEEPS, DEFAULT_TOLERANCE, UpdateOrder
from repro.core.sampled import (
    SampleCertificate,
    reply_set,
    sample_indices,
    widen_reply_set,
)
from repro.core.strategy import StrategyProfile
from repro.core.waterfill import InfeasibleDemand
from repro.queueing.mm1 import expected_response_time
from repro.telemetry.trace import Tracer, current_tracer

__all__ = [
    "ClassAggregation",
    "ClassEquilibriumCertificate",
    "ClassNashResult",
    "ClassNashSolver",
    "aggregate_users",
    "class_best_response_regrets",
]

IntArray = np.ndarray

ClassInitialization = Literal["zero", "proportional", "uniform"]


@dataclass(frozen=True)
class ClassAggregation:
    """Users grouped into weighted classes over a fixed computer fleet.

    Attributes
    ----------
    service_rates:
        ``mu`` — per-computer processing rates, length ``n``.
    class_rates:
        Representative per-*member* job rate of each class (the weighted
        mean of its members' rates), length ``c``.
    counts:
        Number of users in each class, length ``c``.
    demands:
        Total demand of each class — the *exact sum of its members' job
        rates*, never re-derived from the representative rate.  Summing
        keeps ``demands.sum()`` equal to the system's total arrival rate
        (up to summation order), so a feasible system stays feasible
        after aggregation even at the capacity boundary; the re-derived
        ``class_rates * counts`` form drifts by rounding and used to
        push boundary systems over the feasibility check.
    class_of:
        Per-user class index, length ``m`` (``None`` for synthetic
        aggregations such as shard subproblems, which never expand).
    member_rates:
        The original per-user job rates, length ``m`` (``None`` for
        synthetic aggregations).
    grouping_tol:
        The relative tolerance the grouping was built with (0 = exact).
    """

    service_rates: FloatArray
    class_rates: FloatArray
    counts: IntArray
    demands: FloatArray
    class_of: IntArray | None = None
    member_rates: FloatArray | None = None
    grouping_tol: float = 0.0

    def __post_init__(self) -> None:
        mu = np.asarray(self.service_rates, dtype=float)
        rates = np.asarray(self.class_rates, dtype=float)
        counts = np.asarray(self.counts, dtype=np.intp)
        demands = np.asarray(self.demands, dtype=float)
        if mu.ndim != 1 or mu.size == 0 or np.any(mu <= 0.0):
            raise ValueError("service_rates must be a positive 1-D vector")
        if rates.ndim != 1 or rates.size == 0 or np.any(rates <= 0.0):
            raise ValueError("class_rates must be a positive 1-D vector")
        if counts.shape != rates.shape or np.any(counts < 1):
            raise ValueError("counts must be positive, one per class")
        if demands.shape != rates.shape or np.any(demands <= 0.0):
            raise ValueError("demands must be positive, one per class")
        if float(demands.sum()) >= float(mu.sum()):
            raise ValueError(
                "aggregate demand must be strictly below total capacity"
            )
        object.__setattr__(self, "service_rates", mu)
        object.__setattr__(self, "class_rates", rates)
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "demands", demands)
        if self.class_of is not None:
            class_of = np.asarray(self.class_of, dtype=np.intp)
            if class_of.ndim != 1 or class_of.size == 0:
                raise ValueError("class_of must be a 1-D vector")
            if class_of.min() < 0 or class_of.max() >= rates.size:
                raise ValueError("class_of holds out-of-range class indices")
            object.__setattr__(self, "class_of", class_of)
        if self.member_rates is not None:
            member = np.asarray(self.member_rates, dtype=float)
            if self.class_of is None or member.shape != self.class_of.shape:
                raise ValueError(
                    "member_rates requires a matching class_of vector"
                )
            object.__setattr__(self, "member_rates", member)

    # ------------------------------------------------------------------
    # Shape and aggregate properties
    # ------------------------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of user classes ``c``."""
        return int(self.class_rates.size)

    @property
    def n_computers(self) -> int:
        return int(self.service_rates.size)

    @property
    def n_users(self) -> int:
        """Number of underlying users ``m`` (``sum counts`` when synthetic)."""
        if self.class_of is not None:
            return int(self.class_of.size)
        return int(self.counts.sum())

    @property
    def compression(self) -> float:
        """``m / c`` — the state-size reduction the aggregation buys."""
        return self.n_users / self.n_classes

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())

    # ------------------------------------------------------------------
    # Class-space quantities
    # ------------------------------------------------------------------
    def loads(self, class_fractions: FloatArray) -> FloatArray:
        """Aggregate flow into each computer under a class profile."""
        f = self._validated(class_fractions)
        lam: FloatArray = self.demands @ f
        return lam

    def class_times(self, class_fractions: FloatArray) -> FloatArray:
        """Expected response time of one member of each class."""
        f = self._validated(class_fractions)
        lam = self.demands @ f
        if np.any(self.service_rates - lam <= 0.0):
            raise ValueError("class profile violates per-computer stability")
        times: FloatArray = f @ expected_response_time(lam, self.service_rates)
        return times

    def proportional_fractions(self) -> FloatArray:
        """Every class splits along capacity — the NASH_P seed."""
        row = self.service_rates / self.service_rates.sum()
        tiled: FloatArray = np.tile(row, (self.n_classes, 1))
        return tiled

    def as_demand_system(self) -> DistributedSystem:
        """The ``c``-player system whose arrival rates are the class demands.

        *Not* the same game (a class member's opponents include its
        classmates), but it has identical loads/feasibility structure, so
        it drives profile repair and warm starts
        (:func:`repro.core.continuation.warm_start_profile`) in class
        space.
        """
        return DistributedSystem(
            service_rates=self.service_rates, arrival_rates=self.demands
        )

    # ------------------------------------------------------------------
    # Expansion / contraction between user and class space
    # ------------------------------------------------------------------
    def expand(self, class_fractions: FloatArray) -> StrategyProfile:
        """Materialize the ``(m, n)`` per-user profile (every member adopts
        its class row).

        This is the only O(m·n) operation in the class path — at
        ``m = 10^6, n = 1024`` the matrix alone is ~8 GB, so callers at
        scale should stay in class space and expand only slices.
        """
        if self.class_of is None:
            raise ValueError("synthetic aggregation has no user mapping")
        f = self._validated(class_fractions)
        return StrategyProfile(f[self.class_of])

    def expand_user_times(self, class_times: FloatArray) -> FloatArray:
        """Per-user expected response times from per-class member times."""
        if self.class_of is None:
            raise ValueError("synthetic aggregation has no user mapping")
        times = np.asarray(class_times, dtype=float)
        if times.shape != (self.n_classes,):
            raise ValueError("class_times must have one entry per class")
        expanded: FloatArray = times[self.class_of]
        return expanded

    def contract(self, profile: StrategyProfile | FloatArray) -> FloatArray:
        """Demand-weighted class rows from an ``(m, n)`` per-user profile.

        The adjoint of :meth:`expand`: for a class-uniform profile it
        recovers the common row exactly; otherwise it returns each
        class's traffic-weighted mean row — the seed
        :class:`ClassNashSolver` warm starts from (continuation across
        sweep points in class space).
        """
        if self.class_of is None or self.member_rates is None:
            raise ValueError("synthetic aggregation has no user mapping")
        fractions = (
            profile.fractions
            if isinstance(profile, StrategyProfile)
            else np.asarray(profile, dtype=float)
        )
        if fractions.shape != (self.n_users, self.n_computers):
            raise ValueError(
                f"profile must have shape ({self.n_users}, "
                f"{self.n_computers}), got {fractions.shape}"
            )
        weighted = np.zeros((self.n_classes, self.n_computers))
        np.add.at(
            weighted, self.class_of, fractions * self.member_rates[:, None]
        )
        totals = np.zeros(self.n_classes)
        np.add.at(totals, self.class_of, self.member_rates)
        contracted: FloatArray = weighted / totals[:, None]
        return contracted

    def _validated(self, class_fractions: FloatArray) -> FloatArray:
        f = np.asarray(class_fractions, dtype=float)
        if f.shape != (self.n_classes, self.n_computers):
            raise ValueError(
                f"class profile must have shape ({self.n_classes}, "
                f"{self.n_computers}), got {f.shape}"
            )
        return f

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassAggregation(n_classes={self.n_classes}, "
            f"n_users={self.n_users}, n_computers={self.n_computers}, "
            f"compression={self.compression:.1f}x)"
        )


def aggregate_users(
    system: DistributedSystem, *, tol: float = 0.0
) -> ClassAggregation:
    """Group ``system``'s users into weighted classes by job rate.

    ``tol`` is the *relative* grouping tolerance: users whose rates lie
    within ``tol`` (relatively) of a class's anchor rate join that class.
    ``tol=0`` groups exactly equal rates only, for which the class-space
    equilibrium certificate equals the per-user one exactly; ``tol > 0``
    trades an O(tol)-sized certificate slack for fewer classes.

    >>> from repro.workloads import paper_table1_system
    >>> agg = aggregate_users(paper_table1_system(n_users=10))
    >>> agg.n_classes, agg.n_users          # 10 identical users
    (1, 10)
    """
    if tol < 0.0:
        raise ValueError("grouping tolerance must be nonnegative")
    phi = system.arrival_rates
    m = phi.size
    if tol == 0.0:  # reprolint: allow=R002 exact-sentinel: 0 selects exact grouping
        values, inverse, counts = np.unique(
            phi, return_inverse=True, return_counts=True
        )
        class_of = inverse.astype(np.intp)
        # True member-rate sums (values * counts re-rounds and can drift
        # from the system's total demand at the feasibility boundary).
        raw_demands = np.bincount(class_of, weights=phi, minlength=values.size)
        class_rates = values
    else:
        order = np.argsort(phi, kind="stable")
        sorted_phi = phi[order]
        edges = []
        start = 0
        while start < m:
            anchor = float(sorted_phi[start])
            stop = int(
                np.searchsorted(sorted_phi, anchor * (1.0 + tol), side="right")
            )
            stop = max(stop, start + 1)
            edges.append((start, stop))
            start = stop
        class_of = np.empty(m, dtype=np.intp)
        counts = np.empty(len(edges), dtype=np.intp)
        raw_demands = np.empty(len(edges))
        for k, (lo, hi) in enumerate(edges):
            class_of[order[lo:hi]] = k
            counts[k] = hi - lo
            raw_demands[k] = float(sorted_phi[lo:hi].sum())
        class_rates = raw_demands / counts
    return ClassAggregation(
        service_rates=system.service_rates,
        class_rates=class_rates,
        counts=counts,
        # The true member-rate sums: re-deriving ``class_rates * counts``
        # here drifts from ``phi.sum()`` by rounding, which can push a
        # boundary-feasible system over the capacity check (see the
        # regression tests in tests/core/test_classes.py).
        demands=raw_demands,
        class_of=class_of,
        member_rates=phi,
        grouping_tol=float(tol),
    )


# ----------------------------------------------------------------------
# Equilibrium certificate in class space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassEquilibriumCertificate:
    """Per-class (hence per-user, by symmetry) regret certificate.

    Every member of a class has the same current cost and the same
    unilateral best-response cost, so the per-class regrets *are* the
    per-user regrets of the expanded profile and ``epsilon`` is the same
    epsilon :func:`repro.core.equilibrium.best_response_regrets` would
    report on the ``(m, n)`` expansion (exactly for exact grouping).
    """

    regrets: FloatArray
    class_times: FloatArray
    best_response_times: FloatArray
    counts: IntArray
    epsilon: float

    def is_equilibrium(self, tol: float) -> bool:
        return self.epsilon <= tol


def class_best_response_regrets(
    aggregation: ClassAggregation, class_fractions: FloatArray
) -> ClassEquilibriumCertificate:
    """Certify a class profile with ``c`` batched best responses.

    Row ``k``'s available rates are ``mu - lam + phi_k f_k`` — the
    aggregate minus everyone else's flow *including the classmates'* —
    so this is the exact per-user certificate evaluated once per class.
    """
    f = aggregation._validated(class_fractions)
    mu = aggregation.service_rates
    rates = aggregation.class_rates
    lam = aggregation.demands @ f
    if np.any(mu - lam <= 0.0):
        raise ValueError("class profile violates per-computer stability")
    current = f @ expected_response_time(lam, mu)
    member_flows = rates[:, None] * f
    available = (mu - lam)[None, :] + member_flows
    best = optimal_fractions_batch(available, rates).expected_response_times
    regrets = current - best
    return ClassEquilibriumCertificate(
        regrets=regrets,
        class_times=current,
        best_response_times=best,
        counts=aggregation.counts,
        epsilon=float(regrets.max()),
    )


# ----------------------------------------------------------------------
# The class-space best-reply solver
# ----------------------------------------------------------------------
_FILL_MAX_ITERS = 80
_FILL_RTOL = 1e-14


def _symmetric_class_fill(
    m: FloatArray, demand: float, count: float
) -> tuple[FloatArray, float]:
    """Symmetric intra-class equilibrium fill of ``demand`` over rates ``m``.

    ``m`` holds the class's foreign-free rates (``mu - foreign load``);
    the class's ``count`` members, each with job rate ``demand / count``,
    play a symmetric Nash equilibrium among themselves while the rest of
    the world is frozen.  On the support the per-member KKT condition
    gives, for the residual gap ``g_i = m_i - y_i`` (``y`` the class
    *total* on computer ``i``) and multiplier ``t``::

        c g_i^2 - t^2 (c - 1) g_i - t^2 m_i = 0

    whose positive root is monotone in ``t``, with the same support rule
    as the plain water-fill (``i`` carries flow iff ``m_i > t^2``); for
    ``c = 1`` it degenerates to ``g_i = t sqrt(m_i)`` — the paper's
    closed form.  We solve the scalar conservation equation
    ``sum_i y_i(u) = demand`` in ``u = t^2`` by safeguarded Newton.

    Returns the class-total allocation ``y`` (full length, zeros off the
    support) and the member expected response time.  Raises
    :class:`InfeasibleDemand` when ``demand`` is at or above the total
    positive capacity.

    This is the key fix over the naive ``count * best_reply`` update:
    jumping *all* members of a class to the member best reply at once is
    intra-class Jacobi and oscillates for large counts, while this fill
    lands each class exactly on its internal equilibrium, so the outer
    Gauss-Seidel inherits the per-user iteration's contraction.
    """
    pos = m > 0.0
    mp = m[pos]
    cap = float(mp.sum())
    if demand >= cap:
        raise InfeasibleDemand(demand, cap)
    c = count
    c1 = c - 1.0
    # Bracket in u = t^2: u -> 0 gives y -> m (sum = cap > demand),
    # u >= max(m) empties the support (sum = 0 < demand).
    lo = 0.0
    hi = float(mp.max())
    u = hi * (1.0 - demand / cap)
    if u <= lo or u >= hi:
        u = 0.5 * hi
    y = mp.copy()
    for _ in range(_FILL_MAX_ITERS):
        root = np.sqrt((u * c1) ** 2 + 4.0 * c * u * mp)
        g = (u * c1 + root) / (2.0 * c)
        active = mp > g
        y = np.where(active, mp - g, 0.0)
        h = float(y.sum()) - demand
        if h > 0.0:
            lo = u
        else:
            hi = u
        if abs(h) <= _FILL_RTOL * demand:
            break
        # dh/du = -sum over the support of dg/du (root > 0 for u > 0).
        dg = (c1 + (2.0 * u * c1 * c1 + 4.0 * c * mp) / (2.0 * root)) / (
            2.0 * c
        )
        slope = float(dg[active].sum())
        if slope > 0.0:
            u_next = u + h / slope
        else:
            u_next = 0.5 * (lo + hi)
        if u_next <= lo or u_next >= hi:
            u_next = 0.5 * (lo + hi)
        u = u_next
    # Exact conservation: rescale the residual Newton error away (the
    # relative correction is at most ~_FILL_RTOL).
    total = float(y.sum())
    y *= demand / total
    gap = mp - y
    d = float((y / gap)[y > 0.0].sum()) / demand  # reprolint: allow=R003 gap > 0 on the support by construction
    out = np.zeros(m.shape[0])
    out[pos] = y
    return out, d


def _fused_class_reply_inplace(
    mu: FloatArray,
    rate: float,
    count: float,
    demand: float,
    own: FloatArray,
    lam: FloatArray,
    avail: FloatArray,
    thr: FloatArray,
) -> float:
    """One class's equilibrium reply with in-place aggregate bookkeeping.

    ``own`` is the class's *total* flow row inside the ``(c, n)`` flow
    matrix and ``lam`` the running aggregate, so ``mu - lam + own`` are
    the class's foreign-free rates.  ``demand`` is the class's true
    member-rate sum (``ClassAggregation.demands[k]``, *not* re-derived as
    ``rate * count`` — see :func:`aggregate_users`).  A singleton class
    (where ``demand == rate`` bitwise) takes the plain water-fill path
    whose arithmetic mirrors
    :func:`repro.core.nash._fused_best_reply_inplace` statement for
    statement — bit-identical results, which the exact-grouping parity
    tests pin.  A multi-member class lands on its symmetric intra-class
    equilibrium via :func:`_symmetric_class_fill`.  Returns the member's
    new expected response time.
    """
    np.subtract(mu, lam, out=avail)
    avail += own
    if count <= 1.0:
        if np.any(avail <= 0.0):
            # Defensive path: unavailable computers present.
            reply = optimal_fractions(avail, demand)
            lam -= own
            np.multiply(reply.fractions, demand, out=own)
            lam += own
            return float(reply.expected_response_time)

        order = np.argsort(-avail, kind="stable")
        a_sorted = avail[order]
        roots = np.sqrt(a_sorted)
        cum_a = np.cumsum(a_sorted)
        cum_r = np.cumsum(roots)
        if demand >= cum_a[-1]:
            raise InfeasibleDemand(demand, float(cum_a[-1]))

        np.subtract(cum_a, demand, out=thr)
        thr /= cum_r
        valid = roots > thr
        cut = a_sorted.size - int(valid[::-1].argmax())

        t = thr[cut - 1]
        x = a_sorted[:cut] - t * roots[:cut]
        np.maximum(x, 0.0, out=x)
        x *= demand / x.sum()
        gap = a_sorted[:cut] - x
        d = float((x / gap).sum()) / demand  # reprolint: allow=R003 hot path; gap > 0 by the water-fill support

        lam -= own
        own[:] = 0.0
        own[order[:cut]] = x
        lam += own
        return d

    y, d = _symmetric_class_fill(avail, demand, count)
    lam -= own
    own[:] = y
    lam += own
    return d


def _sampled_class_reply(
    avail: FloatArray,
    own: FloatArray,
    demand: float,
    count: float,
    *,
    seed: int,
    sweep: int,
    index: int,
    k: int,
) -> tuple[FloatArray, float, int]:
    """One class's reply restricted to ``support ∪ k-sample``.

    The class-space twin of :func:`repro.core.sampled.sampled_best_reply`:
    the class observes its own support for free, spends ``k`` probes on a
    seeded sample, and lands on its (singleton water-fill or symmetric
    intra-class) equilibrium over the union — widening deterministically
    when the sampled capacity cannot carry the demand (cold starts).
    Returns the new full-length class-total flow row, the member expected
    response time and the polls spent.
    """
    n = avail.shape[0]
    indices = sample_indices(seed, sweep, index, n, k)
    chosen = reply_set(own, indices)
    polls = int(indices.size)
    chosen, extra = widen_reply_set(
        chosen, avail, demand, seed=seed, sweep=sweep, index=index
    )
    polls += extra
    flows = np.zeros(n)
    if count <= 1.0:
        reply = optimal_fractions(avail[chosen], demand)
        flows[chosen] = reply.fractions * demand
        d = float(reply.expected_response_time)
    else:
        y, d = _symmetric_class_fill(avail[chosen], demand, count)
        flows[chosen] = y
    return flows, d, polls


@dataclass(frozen=True)
class ClassNashResult:
    """Outcome of the class-space best-reply iteration.

    ``class_fractions`` is the ``(c, n)`` equilibrium profile; every
    member of class ``k`` plays row ``k`` (call :meth:`expand` to
    materialize the per-user matrix — O(m·n) memory).  ``norm_history``
    is user-weighted, comparable with the per-user solver's.
    """

    class_fractions: FloatArray
    converged: bool
    iterations: int
    norm_history: FloatArray
    class_times: FloatArray
    aggregation: ClassAggregation
    backend: str = "numpy"
    history: tuple[FloatArray, ...] = field(default=())
    sample: SampleCertificate | None = None

    @property
    def final_norm(self) -> float:
        return float(self.norm_history[-1]) if self.norm_history.size else 0.0

    def expand(self) -> StrategyProfile:
        """The per-user ``(m, n)`` profile (see the memory note above)."""
        return self.aggregation.expand(self.class_fractions)


@dataclass(frozen=True)
class ClassNashSolver:
    """Best-reply solver over user classes — ``(c, n)`` state, ``c << m``.

    The configuration mirrors :class:`~repro.core.nash.NashSolver`
    (tolerance on the user-weighted sweep norm, sweep budget, update
    order, seed for the ``"random"`` order).  ``use_jit`` selects the
    optional numba-compiled sweep kernel for the Gauss-Seidel orders:
    ``None`` defers to the ``REPRO_JIT`` environment flag, ``True``
    requests it (falling back to the bit-compatible NumPy path when
    numba is not installed), ``False`` pins the NumPy path.  The backend
    that actually ran is recorded on the result.

    ``sample_k`` switches to power-of-k sampled class replies
    (:mod:`repro.core.sampled`): each class best-responds over its
    current support plus ``k`` seeded probes per sweep, taking the
    NumPy path (the JIT kernel is full-information).  ``k >= n`` runs
    the exact code path unchanged — bit-for-bit identical profiles —
    and only attaches the full-information
    :class:`~repro.core.sampled.SampleCertificate`.
    """

    tolerance: float = DEFAULT_TOLERANCE
    max_sweeps: int = DEFAULT_MAX_SWEEPS
    order: UpdateOrder = "roundrobin"
    seed: int = 0
    use_jit: bool | None = None
    record_history: bool = False
    sample_k: int | None = None

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")
        if self.order not in ("roundrobin", "random", "simultaneous"):
            raise ValueError(f"unknown update order {self.order!r}")
        if self.sample_k is not None and self.sample_k < 1:
            raise ValueError("sample_k must be at least 1 (or None)")

    def _initial_fractions(
        self,
        aggregation: ClassAggregation,
        init: ClassInitialization | FloatArray | StrategyProfile,
    ) -> FloatArray:
        c, n = aggregation.n_classes, aggregation.n_computers
        if isinstance(init, StrategyProfile):
            init = init.fractions
        if isinstance(init, np.ndarray):
            f = np.array(init, dtype=float, copy=True)
            if f.shape != (c, n):
                raise ValueError(
                    f"initial class profile must have shape ({c}, {n}), "
                    f"got {f.shape}"
                )
            return f
        if init == "zero":
            return np.zeros((c, n))
        if init == "proportional":
            return aggregation.proportional_fractions()
        if init == "uniform":
            return np.full((c, n), 1.0 / n)
        raise ValueError(f"unknown initialization {init!r}")

    def solve(
        self,
        aggregation: ClassAggregation,
        init: ClassInitialization | FloatArray | StrategyProfile = "proportional",
        *,
        tracer: Tracer | None = None,
    ) -> ClassNashResult:
        """Run class-space best-reply sweeps from the given initialization.

        Emits ``solver.class_start`` / ``solver.class_sweep`` /
        ``solver.class_done`` events on the (ambient or explicit) tracer;
        the per-sweep ``norm`` fields reconstruct the run's
        ``norm_history`` exactly, like the per-user solver's.
        """
        fractions = self._initial_fractions(aggregation, init)
        mu = aggregation.service_rates
        rates = aggregation.class_rates
        demands = aggregation.demands
        counts_f = aggregation.counts.astype(float)
        singleton = bool(np.all(aggregation.counts == 1))
        c, n = aggregation.n_classes, aggregation.n_computers
        rng = np.random.default_rng(self.seed) if self.order == "random" else None
        # Power-of-k mode: k < n restricts every class reply to
        # support ∪ sample on the NumPy path (the JIT kernel is
        # full-information); k >= n runs the exact path unchanged.
        sampling = self.sample_k is not None and self.sample_k < n
        sample_k = 0 if self.sample_k is None else self.sample_k
        total_polls = 0
        backend = resolve_backend(self.use_jit)
        kernel = (
            sweep_kernel(backend)
            if self.order != "simultaneous" and not sampling
            else None
        )
        if kernel is None:
            backend = "numpy"
        tracer = tracer if tracer is not None else current_tracer()
        trace = tracer.enabled
        if trace:
            tracer.emit(
                "solver.class_start",
                order=self.order,
                classes=c,
                users=aggregation.n_users,
                computers=n,
                compression=aggregation.compression,
                grouping_tol=aggregation.grouping_tol,
                tolerance=self.tolerance,
                max_sweeps=self.max_sweeps,
                backend=backend,
            )

        # D_k^{(0)}: zero without a conserving allocation (NASH_0), the
        # actual member times otherwise — mirroring the per-user solver.
        last_times = np.zeros(c)
        if np.allclose(fractions.sum(axis=1), 1.0):
            try:
                last_times = aggregation.class_times(fractions)
            except ValueError:
                pass

        # Hot loop state: (c, n) class *total* flows and the running
        # aggregate, refreshed once per sweep against round-off drift.
        flows = fractions * demands[:, None]
        avail = np.empty(n)
        thr = np.empty(n)

        norms: list[float] = []
        history: list[FloatArray] = []
        converged = False
        for _sweep in range(self.max_sweeps):
            lam = flows.sum(axis=0)
            sweep_started = perf_counter() if trace else 0.0
            if self.order == "simultaneous":
                if sampling:
                    # Jacobi over reply sets: each class responds to the
                    # frozen aggregate over support ∪ sample.
                    foreign_free = (mu - lam)[None, :] + flows
                    times = np.empty(c)
                    for k in range(c):
                        flows[k], times[k], p = _sampled_class_reply(
                            foreign_free[k],
                            flows[k],
                            float(demands[k]),
                            float(counts_f[k]),
                            seed=self.seed,
                            sweep=_sweep,
                            index=k,
                            k=sample_k,
                        )
                        total_polls += p
                elif singleton:
                    # All-singleton aggregation: the member availables
                    # are the per-user ones, so this is bit-identical to
                    # NashSolver's Jacobi sweep.
                    available = (mu - lam)[None, :] + flows
                    replies = optimal_fractions_batch(available, rates)
                    np.multiply(replies.fractions, demands[:, None], out=flows)
                    times = replies.expected_response_times
                else:
                    # Jacobi across classes, each landing on its internal
                    # symmetric equilibrium against the frozen aggregate.
                    foreign_free = (mu - lam)[None, :] + flows
                    times = np.empty(c)
                    for k in range(c):
                        flows[k], times[k] = _symmetric_class_fill(
                            foreign_free[k],
                            float(demands[k]),
                            float(counts_f[k]),
                        )
                norm = float((counts_f * np.abs(times - last_times)).sum())
                last_times = times
            else:
                schedule = (
                    rng.permutation(c) if rng is not None else np.arange(c)
                )
                if sampling:
                    norm = 0.0
                    for k in schedule:
                        np.subtract(mu, lam, out=avail)
                        avail += flows[k]
                        y, d_k, p = _sampled_class_reply(
                            avail,
                            flows[k],
                            float(demands[k]),
                            float(counts_f[k]),
                            seed=self.seed,
                            sweep=_sweep,
                            index=int(k),
                            k=sample_k,
                        )
                        total_polls += p
                        lam += y - flows[k]
                        flows[k] = y
                        norm += counts_f[k] * abs(d_k - last_times[k])
                        last_times[k] = d_k
                elif kernel is not None and backend != "numpy":
                    norm = float(
                        kernel(
                            mu, rates, counts_f, demands, flows, lam,
                            last_times, np.asarray(schedule, dtype=np.intp),
                        )
                    )
                    if norm < 0.0:
                        raise InfeasibleDemand(
                            aggregation.total_demand, float(mu.sum())
                        )
                else:
                    norm = 0.0
                    for k in schedule:
                        d_k = _fused_class_reply_inplace(
                            mu,
                            float(rates[k]),
                            float(counts_f[k]),
                            float(demands[k]),
                            flows[k],
                            lam,
                            avail,
                            thr,
                        )
                        norm += counts_f[k] * abs(d_k - last_times[k])
                        last_times[k] = d_k
            norms.append(norm)
            if trace:
                elapsed = perf_counter() - sweep_started
                tracer.emit(
                    "solver.class_sweep",
                    index=len(norms) - 1,
                    sweep=len(norms),
                    norm=norm,
                    elapsed_s=elapsed,
                    classes=c,
                )
                tracer.count("solver.class_sweeps")
                tracer.count("solver.class_replies", c)
                tracer.observe("solver.class_sweep_seconds", elapsed)
            if self.record_history:
                history.append(flows / demands[:, None])
            if norm <= self.tolerance:
                converged = True
                break

        final = flows / demands[:, None]
        try:
            class_times = aggregation.class_times(final)
        except ValueError:
            # Only reachable with the simultaneous (Jacobi) order, which
            # can overshoot into an unstable joint profile mid-oscillation.
            class_times = np.full(c, np.inf)
            converged = False
        sample: SampleCertificate | None = None
        if self.sample_k is not None:
            if not sampling:
                # Full-information bypass: every class reply observed all
                # n computers — the poll baseline EXT11 measures against.
                total_polls = len(norms) * c * n
            try:
                epsilon = float(
                    class_best_response_regrets(aggregation, final).epsilon
                )
            except ValueError:
                epsilon = float("inf")
            sample = SampleCertificate(
                k=min(self.sample_k, n),
                n_computers=n,
                sweeps=len(norms),
                polls=total_polls,
                sampled_norm=norms[-1] if norms else 0.0,
                epsilon=epsilon,
            )
            if trace:
                tracer.emit(
                    "solver.sample",
                    k=sample.k,
                    computers=n,
                    sweeps=sample.sweeps,
                    polls=sample.polls,
                    sampled_norm=sample.sampled_norm,
                    epsilon=sample.epsilon,
                )
        if trace:
            tracer.emit(
                "solver.class_done",
                converged=converged,
                iterations=len(norms),
                final_norm=norms[-1] if norms else 0.0,
                backend=backend,
            )
        return ClassNashResult(
            class_fractions=final,
            converged=converged,
            iterations=len(norms),
            norm_history=np.asarray(norms, dtype=float),
            class_times=class_times,
            aggregation=aggregation,
            backend=backend,
            history=tuple(history),
            sample=sample,
        )


# Re-exported for callers that want the sweep kernel directly (tests,
# benchmarks); the solver itself dispatches through resolve_backend.
_ = class_sweep_inplace
