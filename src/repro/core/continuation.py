"""Warm-start continuation along parameter sweeps.

Adjacent points of the paper's sweeps — utilization 0.1 → 0.2 → … (Fig.
4), user count 4 → 8 → … (Fig. 3), skewness 1 → 2 → … (Fig. 6) — have
nearly identical Nash equilibria: the best-reply map contracts around
each equilibrium and the equilibrium varies smoothly in the sweep
parameter (the neighbourhood-convergence structure distributed selfish
load-balancing analyses exploit).  Continuation therefore seeds each
point's solve from the preceding equilibria instead of a cold
proportional start.  Because the best-reply iteration converges
geometrically, the sweeps saved are proportional to the *decades* of
initial error removed — so the predictor matters:

* carry-over (:func:`warm_start_profile`) reuses the previous
  equilibrium directly: error ``O(h)`` in the step size ``h``;
* the :class:`SweepPredictor` extrapolates through the last up-to-3
  equilibria (Lagrange, in the sweep parameter): error ``O(h^3)``,
  which on a dense sweep starts the solve several decades closer and
  roughly triples sweep throughput (docs/PERFORMANCE.md has measured
  numbers).

Warm starts trade no accuracy: the solver runs to the *same* tolerance
and every point is certified by
:func:`repro.core.equilibrium.best_response_regrets` exactly as a cold
solve would be.

Feasibility of the seed is repaired, not assumed:

* predicted fractions are clipped to the simplex (nonnegative rows
  renormalized to 1);
* a seed that violates stability (e.g. utilization swept up past a hot
  computer's capacity share) is blended toward the always-feasible
  proportional profile — loads are *linear* in fractions, so the convex
  blend that caps every computer strictly below capacity is feasible by
  construction;
* as a last resort the overloaded computers are masked out via
  :func:`repro.core.degradation.project_profile`;
* if nothing feasible remains, ``None`` is returned and the caller
  cold-starts;
* a user-count change rebuilds the seed from the previous *aggregate*
  loads, rescaled to the new total arrival rate, via
  :meth:`~repro.core.strategy.StrategyProfile.from_loads` (per-user
  identity is lost but the aggregate split — what the equilibrium
  essentially determines for identical users — carries over).

A computer-count change is remapped *by computer name* when
``previous_system`` is given (the online engine's failure/reopen case):
columns of surviving computers carry over, a failed computer's mass is
re-split across the survivors, and a reopened (or newly provisioned)
computer is seeded with its capacity-proportional share of every user's
traffic.  Without ``previous_system`` there is no name mapping and the
change returns ``None`` (cold start), as before.
"""

from __future__ import annotations

import numpy as np

from repro.core.degradation import project_profile
from repro.core.model import DistributedSystem
from repro.core.strategy import FEASIBILITY_ATOL, StrategyProfile

__all__ = ["warm_start_profile", "SweepPredictor"]

#: Blended seeds keep every computer's load at or below this fraction of
#: its service rate — strictly stable, with enough headroom that the
#: first best-reply sweep is well-conditioned.
_BLEND_CAP = 1.0 - 1e-3


def _blend_toward_proportional(
    system: DistributedSystem, fractions: np.ndarray
) -> StrategyProfile | None:
    """Largest convex blend of ``fractions`` with the proportional profile
    whose loads stay strictly below capacity.

    Loads are linear in fractions, so for blend weight ``a`` the loads
    are ``a * loads_prev + (1 - a) * loads_prop``; the proportional
    profile's loads are ``rho * mu`` (strictly stable), hence a suitable
    ``a`` exists whenever the system itself is stable.
    """
    proportional = StrategyProfile.proportional(system).fractions
    loads_prev = system.loads(fractions)
    loads_prop = system.loads(proportional)
    cap = system.service_rates * _BLEND_CAP
    if np.any(loads_prop >= cap):
        return None  # system too close to saturation for a margin
    tight = loads_prev > cap
    if not tight.any():
        weight = 1.0
    else:
        # reprolint: allow=R003 convex blend weight, not an M/M/1 delay
        ratios = (cap[tight] - loads_prop[tight]) / (
            loads_prev[tight] - loads_prop[tight]
        )
        weight = float(np.clip(ratios.min(), 0.0, 1.0))
    blended = weight * fractions + (1.0 - weight) * proportional
    candidate = StrategyProfile(blended)
    if candidate.is_feasible(system):
        return candidate
    return None


def _mask_overloaded(
    system: DistributedSystem, fractions: np.ndarray
) -> StrategyProfile | None:
    """Last-resort repair: project all mass off the overloaded computers."""
    loads = system.loads(fractions)
    online = loads < system.service_rates
    if not online.any():
        return None
    repaired = project_profile(
        fractions,
        online,
        fallback_rates=system.service_rates,
        atol=FEASIBILITY_ATOL,
    )
    candidate = StrategyProfile(repaired)
    if candidate.is_feasible(system):
        return candidate
    return None


def _repair(
    system: DistributedSystem, fractions: np.ndarray
) -> StrategyProfile | None:
    """Feasible profile nearest in spirit to ``fractions``, or ``None``."""
    candidate = StrategyProfile(np.array(fractions, dtype=float, copy=True))
    if candidate.is_feasible(system):
        return candidate
    blended = _blend_toward_proportional(system, fractions)
    if blended is not None:
        return blended
    return _mask_overloaded(system, fractions)


def _remap_computers(
    system: DistributedSystem,
    previous: StrategyProfile,
    previous_system: DistributedSystem,
) -> np.ndarray | None:
    """``previous``'s fractions re-expressed on ``system``'s computers.

    Computers are matched by name.  Carried columns keep their previous
    fractions; mass sent to computers that disappeared (failures) is
    re-split across the carried columns in proportion to what the user
    already sends there; computers with no previous column (reopenings,
    new provisions) are seeded with their capacity share ``Q`` of each
    row, the carried mass scaled by ``1 - Q``.  Rows stay stochastic by
    construction.  Returns ``None`` when no computer name carries over
    or names are ambiguous (duplicates).
    """
    prev_names = previous_system.computer_names
    new_names = system.computer_names
    if len(set(prev_names)) != len(prev_names):
        return None
    if len(set(new_names)) != len(new_names):
        return None
    prev_index = {name: i for i, name in enumerate(prev_names)}
    carried_cols = [prev_index.get(name) for name in new_names]
    if all(col is None for col in carried_cols):
        return None
    n_users, n = previous.n_users, system.n_computers
    carried = np.zeros((n_users, n))
    fresh = np.zeros(n, dtype=bool)
    for k, col in enumerate(carried_cols):
        if col is None:
            fresh[k] = True
        else:
            carried[:, k] = previous.fractions[:, col]
    mu = system.service_rates
    proportional_row = mu / mu.sum()
    fresh_share = float(proportional_row[fresh].sum())  # the share Q
    row_mass = carried.sum(axis=1)
    remapped = np.empty((n_users, n))
    for j in range(n_users):
        if row_mass[j] > 0.0:
            row = carried[j] * ((1.0 - fresh_share) / row_mass[j])
            row[fresh] = proportional_row[fresh]
            remapped[j] = row
        else:
            # Every column this user used disappeared: capacity split.
            remapped[j] = proportional_row
    return remapped


def warm_start_profile(
    system: DistributedSystem,
    previous: StrategyProfile,
    *,
    previous_system: DistributedSystem | None = None,
) -> StrategyProfile | None:
    """Previous sweep point's equilibrium, adapted as an init for ``system``.

    Returns a feasible :class:`~repro.core.strategy.StrategyProfile` to
    seed :meth:`repro.core.nash.NashSolver.solve` with, or ``None`` when
    no usable warm start exists (the caller then cold-starts).  When the
    user count changes across the sweep, ``previous_system`` (if given)
    supplies the arrival rates used to form the previous point's
    traffic-weighted aggregate split; otherwise users are weighted
    equally — exact for the identical-user sweeps of Fig. 3.  When the
    *computer* count (or identity) changes, ``previous_system`` is
    required: computers are matched by name and the failed/reopened
    columns re-split (see :func:`_remap_computers`); without it the
    change returns ``None``.
    """
    fractions = previous.fractions
    if previous.n_computers != system.n_computers:
        if (
            previous_system is None
            or previous_system.n_computers != previous.n_computers
        ):
            return None
        remapped = _remap_computers(system, previous, previous_system)
        if remapped is None:
            return None
        fractions = remapped
    elif (
        previous_system is not None
        and previous_system.n_computers == previous.n_computers
        and previous_system.computer_names != system.computer_names
    ):
        # Same width but different fleet membership (e.g. one failure +
        # one reopen in the same epoch): still remap by name.
        remapped = _remap_computers(system, previous, previous_system)
        if remapped is not None:
            fractions = remapped
    if previous.n_users == system.n_users:
        return _repair(system, fractions)
    # User count changed: carry over the aggregate split, rescaled to the
    # new total demand.
    if previous_system is not None and previous_system.n_users == previous.n_users:
        previous_loads = previous_system.arrival_rates @ fractions
    else:
        previous_loads = np.sum(fractions, axis=0)
    total = float(previous_loads.sum())
    if total <= 0.0:
        return None
    scaled = previous_loads * (system.total_arrival_rate / total)
    profile = StrategyProfile.from_loads(system, scaled)
    return _repair(system, profile.fractions)


def _clip_to_simplex(fractions: np.ndarray) -> np.ndarray:
    """Nearest row-stochastic matrix by clipping and renormalizing."""
    clipped = np.clip(fractions, 0.0, None)
    totals = clipped.sum(axis=1, keepdims=True)
    uniform = np.full_like(clipped, 1.0 / clipped.shape[1])
    with np.errstate(invalid="ignore"):
        normalized = np.where(totals > 0.0, clipped / totals, uniform)
    return normalized


class SweepPredictor:
    """Predicts each sweep point's equilibrium from the points before it.

    Feed it the sweep's solved points in axis order via :meth:`record`;
    :meth:`predict` then proposes a feasible init for the next point —
    Lagrange extrapolation through the last up-to-``depth`` same-shape
    equilibria when the parameter is numeric, the
    :func:`warm_start_profile` carry-over otherwise — or ``None`` when
    the sweep has no usable history (cold start).

    >>> from repro.workloads import paper_table1_system
    >>> from repro.core.nash import NashSolver
    >>> predictor, solver = SweepPredictor(), NashSolver()
    >>> for rho in (0.1, 0.2, 0.3):
    ...     system = paper_table1_system(utilization=rho)
    ...     init = predictor.predict(rho, system) or "proportional"
    ...     result = solver.solve(system, init)
    ...     predictor.record(rho, result.profile, system)
    """

    def __init__(self, depth: int = 3):
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = int(depth)
        self._history: list[
            tuple[float | None, StrategyProfile, DistributedSystem]
        ] = []

    @staticmethod
    def _as_axis_value(parameter: object) -> float | None:
        if isinstance(parameter, (int, float)) and not isinstance(
            parameter, bool
        ):
            return float(parameter)
        return None

    def record(
        self,
        parameter: object,
        profile: StrategyProfile,
        system: DistributedSystem,
    ) -> None:
        """Remember one solved sweep point (call in sweep-axis order)."""
        self._history.append((self._as_axis_value(parameter), profile, system))
        if len(self._history) > self.depth:
            del self._history[0]

    def predict(
        self, parameter: object, system: DistributedSystem
    ) -> StrategyProfile | None:
        """Feasible init for the point at ``parameter``, or ``None``."""
        if not self._history:
            return None
        axis = self._as_axis_value(parameter)
        usable = [
            (value, profile)
            for value, profile, _ in self._history
            if value is not None
            and profile.fractions.shape
            == (system.n_users, system.n_computers)
        ]
        if axis is not None and len(usable) >= 2:
            values = [value for value, _ in usable]
            if len(set(values)) == len(values) and axis not in values:
                extrapolated = np.zeros(
                    (system.n_users, system.n_computers)
                )
                for i, (value_i, profile_i) in enumerate(usable):
                    weight = 1.0
                    for j, (value_j, _) in enumerate(usable):
                        if i != j:
                            weight *= (axis - value_j) / (value_i - value_j)
                    extrapolated += weight * profile_i.fractions
                seed = _repair(system, _clip_to_simplex(extrapolated))
                if seed is not None:
                    return seed
        previous_profile, previous_system = (
            self._history[-1][1],
            self._history[-1][2],
        )
        return warm_start_profile(
            system, previous_profile, previous_system=previous_system
        )
