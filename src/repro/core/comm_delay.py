"""The load balancing game with communication delays (model extension).

The IPDPS paper's model charges a job only its queueing delay at the
chosen computer.  The authors' extended journal treatment (and the
routing literature the paper builds on — Orda et al., Korilis et al.)
adds a **communication delay** ``t_i`` for shipping a job to computer
``i``, so user ``j``'s cost becomes

    D_j(s) = sum_i s_ji * ( 1/(mu_i - lambda_i) + t_ji )

With delays the best response is still the unique solution of a convex
program, but the square-root water-fill closed form no longer applies:
the KKT conditions become

    a_i / (a_i - x_i)^2 + t_i = alpha        on the support,
    1/a_i + t_i >= alpha                     off the support,

so ``x_i(alpha) = a_i - sqrt(a_i / (alpha - t_i))`` and the multiplier
``alpha`` is fixed by flow conservation.  ``sum_i x_i(alpha)`` is
continuous and strictly increasing in ``alpha``, which makes bisection
exact and fast; that is what :func:`delayed_best_response` implements
(vectorized over computers inside each bisection step).

The best-reply iteration and equilibrium verification then lift to the
delayed game unchanged (:class:`DelayedNashSolver`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile

__all__ = [
    "DelayedGame",
    "delayed_best_response",
    "DelayedNashResult",
    "DelayedNashSolver",
]

_BISECTION_TOL = 1e-13
_MAX_BISECTIONS = 200


@dataclass(frozen=True)
class DelayedGame:
    """A distributed system plus per-user-per-computer communication delays.

    Parameters
    ----------
    system:
        The underlying queueing system.
    delays:
        ``t_ji`` — nonnegative ``(m, n)`` matrix of communication delays
        (seconds added to every job user ``j`` ships to computer ``i``).
        A 1-D vector is broadcast to all users (delays that depend only on
        the computer's location).
    """

    system: DistributedSystem
    delays: np.ndarray

    def __post_init__(self) -> None:
        t = np.array(self.delays, dtype=float, copy=True)
        m, n = self.system.n_users, self.system.n_computers
        if t.ndim == 1:
            if t.shape != (n,):
                raise ValueError("1-D delays must have one entry per computer")
            t = np.tile(t, (m, 1))
        if t.shape != (m, n):
            raise ValueError(f"delays must have shape ({m}, {n})")
        if np.any(t < 0.0) or not np.all(np.isfinite(t)):
            raise ValueError("delays must be finite and nonnegative")
        t.setflags(write=False)
        object.__setattr__(self, "delays", t)

    def user_costs(self, profile: StrategyProfile) -> np.ndarray:
        """``D_j`` including communication delays."""
        times = self.system.response_times(profile.fractions)
        queueing = profile.fractions @ times
        shipping = (profile.fractions * self.delays).sum(axis=1)
        return queueing + shipping

    def overall_cost(self, profile: StrategyProfile) -> float:
        phi = self.system.arrival_rates
        return float(self.user_costs(profile) @ phi / phi.sum())


def delayed_best_response(
    available_rates, delays, job_rate: float
) -> np.ndarray:
    """Optimal fractions for one user of the delayed game.

    Solves ``min sum_i x_i/(a_i - x_i) + t_i x_i`` over ``x >= 0`` with
    ``sum x = phi_j`` by bisecting on the KKT multiplier ``alpha``.  With
    all delays zero this reduces exactly to the paper's OPTIMAL water-fill
    (a property the tests pin down).

    Returns the fraction vector (loads divided by ``job_rate``).
    """
    a = np.asarray(available_rates, dtype=float)
    t = np.asarray(delays, dtype=float)
    if a.shape != t.shape or a.ndim != 1:
        raise ValueError("rates and delays must be equal-length vectors")
    if job_rate <= 0.0:
        raise ValueError("job rate must be positive")
    usable = a > 0.0
    if job_rate >= a[usable].sum():
        raise ValueError("job rate must be below the total available rate")

    a_use = a[usable]
    t_use = t[usable]

    def loads_at(alpha: float) -> np.ndarray:
        # x_i(alpha) = a_i - sqrt(a_i / (alpha - t_i)) where positive.
        slack = alpha - t_use
        x = np.zeros_like(a_use)
        active = slack > 1.0 / a_use  # marginal cost at 0 below alpha
        x[active] = a_use[active] - np.sqrt(a_use[active] / slack[active])
        return x

    # Bracket alpha: at alpha_lo no computer is attractive (total = 0);
    # grow alpha_hi until the induced flow covers the demand.
    alpha_lo = float((1.0 / a_use + t_use).min())
    alpha_hi = alpha_lo + 1.0
    for _ in range(200):  # pragma: no branch
        if loads_at(alpha_hi).sum() > job_rate:
            break
        alpha_hi = alpha_lo + 2.0 * (alpha_hi - alpha_lo)
    else:  # pragma: no cover - demand < capacity guarantees a bracket
        raise AssertionError("failed to bracket the KKT multiplier")

    for _ in range(_MAX_BISECTIONS):
        mid = 0.5 * (alpha_lo + alpha_hi)
        if loads_at(mid).sum() < job_rate:
            alpha_lo = mid
        else:
            alpha_hi = mid
        if alpha_hi - alpha_lo <= _BISECTION_TOL * max(1.0, alpha_hi):
            break
    x_use = loads_at(alpha_hi)
    total = x_use.sum()
    if total > 0.0:
        x_use *= job_rate / total
    loads = np.zeros_like(a)
    loads[usable] = x_use
    return loads / job_rate


@dataclass(frozen=True)
class DelayedNashResult:
    """Outcome of best-reply iteration on the delayed game."""

    profile: StrategyProfile
    converged: bool
    iterations: int
    user_costs: np.ndarray


@dataclass(frozen=True)
class DelayedNashSolver:
    """Round-robin best replies for the communication-delay game."""

    tolerance: float = 1e-6
    max_sweeps: int = 500

    def __post_init__(self) -> None:
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")

    def solve(self, game: DelayedGame) -> DelayedNashResult:
        system = game.system
        m = system.n_users
        fractions = StrategyProfile.proportional(system).fractions.copy()
        last_costs = game.user_costs(StrategyProfile(fractions))

        converged = False
        sweeps = 0
        for sweeps in range(1, self.max_sweeps + 1):
            norm = 0.0
            for j in range(m):
                available = system.available_rates(fractions, j)
                fractions[j] = delayed_best_response(
                    available, game.delays[j], float(system.arrival_rates[j])
                )
                cost = game.user_costs(StrategyProfile(fractions))[j]
                norm += abs(cost - last_costs[j])
                last_costs[j] = cost
            if norm <= self.tolerance:
                converged = True
                break

        profile = StrategyProfile(fractions)
        return DelayedNashResult(
            profile=profile,
            converged=converged,
            iterations=sweeps,
            user_costs=game.user_costs(profile),
        )
