"""Dynamic re-balancing on top of the static game (paper Sec. 3 and Sec. 5).

The paper's NASH algorithm "is initiated periodically or when the system
parameters are changed"; between runs the system stays at the last
equilibrium.  This module drives exactly that loop over a sequence of
system snapshots (e.g. time-varying user demand) and quantifies the
benefit of *warm starting* each run from the previous equilibrium — the
same phenomenon that makes NASH_P beat NASH_0 in Figures 2-3, taken to its
logical conclusion (the paper's "dynamic load balancing" future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    NashResult,
    NashSolver,
)
from repro.core.strategy import StrategyProfile

__all__ = ["EpisodeResult", "DynamicsResult", "run_dynamic_balancing"]


@dataclass(frozen=True)
class EpisodeResult:
    """Equilibrium computation for one system snapshot."""

    system: DistributedSystem
    result: NashResult

    @property
    def iterations(self) -> int:
        return self.result.iterations


@dataclass(frozen=True)
class DynamicsResult:
    """Sequence of re-balancing episodes.

    Attributes
    ----------
    episodes:
        One :class:`EpisodeResult` per system snapshot, in order.
    """

    episodes: tuple[EpisodeResult, ...]

    @property
    def iterations_per_episode(self) -> np.ndarray:
        return np.asarray([e.iterations for e in self.episodes], dtype=int)

    @property
    def all_converged(self) -> bool:
        return all(e.result.converged for e in self.episodes)

    @property
    def user_time_trajectory(self) -> np.ndarray:
        """(episodes, users) matrix of equilibrium expected response times."""
        return np.vstack([e.result.user_times for e in self.episodes])


def run_dynamic_balancing(
    systems: Iterable[DistributedSystem],
    *,
    warm_start: bool = True,
    cold_init: Literal["zero", "proportional", "uniform"] = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
) -> DynamicsResult:
    """Re-run the NASH algorithm across a sequence of system snapshots.

    Parameters
    ----------
    systems:
        Snapshots of the distributed system; the computer set must stay
        fixed but user arrival rates may change per episode (user counts
        must match for warm starting to be meaningful).
    warm_start:
        Start each episode from the previous equilibrium profile when its
        shape matches and it remains feasible; otherwise (and always for
        the first episode) fall back to ``cold_init``.
    """
    solver = NashSolver(tolerance=tolerance, max_sweeps=max_sweeps)
    episodes: list[EpisodeResult] = []
    previous: StrategyProfile | None = None
    for system in systems:
        init: StrategyProfile | str = cold_init
        if warm_start and previous is not None:
            shape_ok = previous.fractions.shape == (
                system.n_users,
                system.n_computers,
            )
            if shape_ok and previous.is_feasible(system):
                init = previous
        result = solver.solve(system, init)  # type: ignore[arg-type]
        episodes.append(EpisodeResult(system=system, result=result))
        previous = result.profile
    if not episodes:
        raise ValueError("at least one system snapshot is required")
    return DynamicsResult(episodes=tuple(episodes))
