"""Dynamic re-balancing on top of the static game (paper Sec. 3 and Sec. 5).

The paper's NASH algorithm "is initiated periodically or when the system
parameters are changed"; between runs the system stays at the last
equilibrium.  This module drives exactly that loop over a sequence of
system snapshots (e.g. time-varying user demand) and quantifies the
benefit of *warm starting* each run from the previous equilibrium — the
same phenomenon that makes NASH_P beat NASH_0 in Figures 2-3, taken to its
logical conclusion (the paper's "dynamic load balancing" future work).

Since the online engine landed, this module is a thin snapshot-driven
wrapper over :class:`repro.engine.OnlineEquilibriumEngine`: each
snapshot is diffed against the engine's fleet state into one churn epoch
(capacity changes plus a wholesale demand replacement) and solved with
the legacy semantics — ``certify_every=None`` for a single
uninterrupted solver call, ``warm_mode="strict"`` for the historical
"reuse the previous profile only when shape-compatible and feasible"
rule — so results are identical to the pre-engine implementation while
there is only one re-equilibration code path in the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import DEFAULT_MAX_SWEEPS, DEFAULT_TOLERANCE, NashResult
from repro.engine.events import CapacityChange, ChurnEpoch, ChurnEvent, SetDemand
from repro.engine.service import EngineConfig, OnlineEquilibriumEngine
from repro.engine.state import FleetState

__all__ = ["EpisodeResult", "DynamicsResult", "run_dynamic_balancing"]


@dataclass(frozen=True)
class EpisodeResult:
    """Equilibrium computation for one system snapshot."""

    system: DistributedSystem
    result: NashResult

    @property
    def iterations(self) -> int:
        return self.result.iterations


@dataclass(frozen=True)
class DynamicsResult:
    """Sequence of re-balancing episodes.

    Attributes
    ----------
    episodes:
        One :class:`EpisodeResult` per system snapshot, in order.
    """

    episodes: tuple[EpisodeResult, ...]

    @property
    def iterations_per_episode(self) -> np.ndarray:
        return np.asarray([e.iterations for e in self.episodes], dtype=int)

    @property
    def all_converged(self) -> bool:
        return all(e.result.converged for e in self.episodes)

    @property
    def user_time_trajectory(self) -> np.ndarray:
        """(episodes, users) matrix of equilibrium expected response times."""
        return np.vstack([e.result.user_times for e in self.episodes])


def _snapshot_epoch(state: FleetState, system: DistributedSystem) -> ChurnEpoch:
    """Churn epoch that moves ``state`` onto the snapshot ``system``."""
    events: list[ChurnEvent] = []
    if not np.array_equal(state.service_rates, system.service_rates):
        for computer, rate in enumerate(system.service_rates):
            if not np.array_equal(state.service_rates[computer], rate):
                events.append(CapacityChange(computer, float(rate)))
    events.append(
        SetDemand(
            tuple(float(rate) for rate in system.arrival_rates),
            system.user_names,
        )
    )
    return tuple(events)


def run_dynamic_balancing(
    systems: Iterable[DistributedSystem],
    *,
    warm_start: bool = True,
    cold_init: Literal["zero", "proportional", "uniform"] = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
) -> DynamicsResult:
    """Re-run the NASH algorithm across a sequence of system snapshots.

    Parameters
    ----------
    systems:
        Snapshots of the distributed system; the computer set must stay
        fixed but user arrival rates may change per episode (user counts
        must match for warm starting to be meaningful).
    warm_start:
        Start each episode from the previous equilibrium profile when its
        shape matches and it remains feasible; otherwise (and always for
        the first episode) fall back to ``cold_init``.
    """
    config = EngineConfig(
        tolerance=tolerance,
        sweep_budget=max_sweeps,
        certify_every=None,
        warm_mode="strict" if warm_start else "off",
        cold_init=cold_init,
    )
    episodes: list[EpisodeResult] = []
    engine: OnlineEquilibriumEngine | None = None
    for system in systems:
        if engine is None or engine.state.n_computers != system.n_computers:
            # First snapshot, or the fleet itself changed size (which the
            # legacy loop always cold-started): fresh engine, bootstrap
            # solve is the episode.
            engine = OnlineEquilibriumEngine(system, config=config)
            report = engine.bootstrap
        else:
            report = engine.process_epoch(_snapshot_epoch(engine.state, system))
        if report.result is None:  # pragma: no cover - snapshots are valid games
            raise RuntimeError(f"snapshot produced no equilibrium: {report.status}")
        episodes.append(EpisodeResult(system=system, result=report.result))
    if not episodes:
        raise ValueError("at least one system snapshot is required")
    return DynamicsResult(episodes=tuple(episodes))
