"""Optional numba JIT backend for the class-space sweep kernel.

The class-space best-reply sweep (:mod:`repro.core.classes`) spends its
time in a fused water-fill per class; :func:`class_sweep_inplace` is a
loop-style restatement of that kernel written in the numba ``njit``
subset so the whole Gauss-Seidel sweep can compile to one native call.

numba is **never required**: it is an optional extra (``pip install
.[jit]``) requested via the ``REPRO_JIT`` environment flag or the
solver's ``use_jit`` knob.  When numba is absent (the CI default) the
solver silently takes its standard fused-NumPy path, which is
*bit-identical* to running with ``use_jit=False`` — the JIT is a pure
accelerator, not a semantic switch.  The compiled kernel itself is
tolerance-checked against the NumPy path (sort tie-breaking may differ
in the last ulp), see ``tests/core/test_classes_jit.py``.

Resolution order:

1. ``use_jit=False`` (or unset with ``REPRO_JIT`` unset/falsy) → numpy.
2. ``use_jit=True`` or ``REPRO_JIT`` truthy, numba importable and the
   kernel compiles → numba.
3. Otherwise → numpy fallback (no warning; the chosen backend is
   recorded on :class:`~repro.core.classes.ClassNashResult`).
"""

from __future__ import annotations

import os
from typing import Callable, Final

import numpy as np
import numpy.typing as npt

from repro._typing import FloatArray

__all__ = [
    "class_sweep_inplace",
    "jit_available",
    "jit_requested",
    "resolve_backend",
    "sweep_kernel",
]

IndexArray = npt.NDArray[np.intp]

#: Signature shared by the python and compiled sweep kernels.
SweepKernel = Callable[
    [
        FloatArray,  # mu            (n,)   read-only
        FloatArray,  # rates         (c,)   read-only
        FloatArray,  # counts        (c,)   read-only
        FloatArray,  # demands       (c,)   read-only member-rate sums
        FloatArray,  # flows         (c, n) mutated: class *total* flows
        FloatArray,  # lam           (n,)   mutated: running aggregate
        FloatArray,  # last_times    (c,)   mutated: previous member times
        IndexArray,  # schedule      (c,)   read-only update order
    ],
    float,
]

_TRUTHY: Final = frozenset({"1", "true", "yes", "on"})

_compiled_kernel: SweepKernel | None = None
_compile_attempted: bool = False


def jit_requested() -> bool:
    """Whether the ``REPRO_JIT`` environment flag asks for the JIT."""
    return os.environ.get("REPRO_JIT", "").strip().lower() in _TRUTHY


def jit_available() -> bool:
    """Whether numba is importable in this environment."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(use_jit: bool | None) -> str:
    """Resolve a solver's ``use_jit`` knob to ``"numba"`` or ``"numpy"``.

    ``None`` defers to :func:`jit_requested` (the ``REPRO_JIT`` flag);
    an explicit ``True`` still degrades gracefully to ``"numpy"`` when
    numba is not installed, so requesting the JIT is always safe.
    """
    wanted = jit_requested() if use_jit is None else use_jit
    if wanted and jit_available():
        return "numba"
    return "numpy"


def sweep_kernel(backend: str) -> SweepKernel | None:
    """The compiled sweep kernel for ``backend``, or ``None`` for numpy.

    Returning ``None`` tells the solver to run its standard fused-NumPy
    path (bit-identical to ``use_jit=False``); that is also the answer
    when numba is present but compilation fails for any reason.
    """
    global _compiled_kernel, _compile_attempted
    if backend != "numba":
        return None
    if not _compile_attempted:
        _compile_attempted = True
        try:
            from numba import njit

            compiled: SweepKernel = njit(cache=False, fastmath=False)(
                class_sweep_inplace
            )
            # Force compilation on a toy instance so runtime failures
            # surface here (and fall back) rather than mid-solve.
            mu = np.array([4.0, 2.0])
            flows = np.array([[0.5, 0.5]])
            lam = flows.sum(axis=0)
            compiled(
                mu,
                np.array([1.0]),
                np.array([1.0]),
                np.array([1.0]),
                flows,
                lam,
                np.zeros(1),
                np.zeros(1, dtype=np.intp),
            )
            _compiled_kernel = compiled
        except Exception:
            _compiled_kernel = None
    return _compiled_kernel


def class_sweep_inplace(
    mu: FloatArray,
    rates: FloatArray,
    counts: FloatArray,
    demands: FloatArray,
    flows: FloatArray,
    lam: FloatArray,
    last_times: FloatArray,
    schedule: IndexArray,
) -> float:
    """One Gauss-Seidel sweep of class best replies, loop form.

    ``demands`` are the classes' true member-rate sums
    (:attr:`~repro.core.classes.ClassAggregation.demands`) — *not*
    re-derived as ``rates * counts``, whose rounding drifts from the
    system's total demand.  Mutates ``flows`` (class *total* flow rows),
    ``lam`` (the running aggregate) and ``last_times`` (per-class member
    response times) in place and returns the user-weighted sweep norm
    ``sum_k count_k |D_k - D_k_prev|`` — or ``-1.0`` if some class's
    demand exceeds its available capacity (the caller raises
    :class:`~repro.core.waterfill.InfeasibleDemand`).

    Written in the numba ``njit`` subset (flat loops, no fancy
    indexing); running it under plain Python is supported and is what
    the parity tests do.  Computers whose available rate is non-positive
    are excluded from the water-fill, mirroring the defensive mask in
    :func:`repro.core.best_response.optimal_fractions`.
    """
    n = mu.shape[0]
    avail = np.empty(n)
    idx = np.empty(n, dtype=np.intp)
    norm = 0.0
    for s in range(schedule.shape[0]):
        k = schedule[s]
        count = counts[k]
        demand = demands[k]
        # Foreign-free rates m_i = mu_i - lam_i + own_i; collect the
        # usable (positive) ones.
        n_pos = 0
        total = 0.0
        m_max = 0.0
        for i in range(n):
            a = mu[i] - lam[i] + flows[k, i]
            avail[i] = a
            if a > 0.0:
                idx[n_pos] = i
                n_pos += 1
                total += a
                if a > m_max:
                    m_max = a
        if demand >= total:
            return -1.0
        vals = np.empty(n_pos)
        for j in range(n_pos):
            vals[j] = avail[idx[j]]
        x = np.empty(n_pos)
        d = 0.0
        if count <= 1.0:
            # Singleton class (demand == rate bitwise): plain sqrt
            # water-fill (closed form).
            order = np.argsort(-vals)
            # Threshold scan: cut is the last position whose sqrt clears
            # the running threshold (a prefix property, descending sort).
            cum_a = 0.0
            cum_r = 0.0
            cut = 0
            t = 0.0
            for j in range(n_pos):
                a = vals[order[j]]
                r = np.sqrt(a)
                cum_a += a
                cum_r += r
                tj = (cum_a - demand) / cum_r
                if r > tj:
                    cut = j + 1
                    t = tj
            x_sum = 0.0
            for j in range(cut):
                a = vals[order[j]]
                xv = a - t * np.sqrt(a)
                if xv < 0.0:
                    xv = 0.0
                x[j] = xv
                x_sum += xv
            scale = demand / x_sum
            for j in range(cut):
                x[j] *= scale
                a = vals[order[j]]
                d += x[j] / (a - x[j])  # reprolint: allow=R003 fused kernel; gap > 0 on the support
            d /= demand
            for i in range(n):
                lam[i] -= flows[k, i]
                flows[k, i] = 0.0
            for j in range(cut):
                i = idx[order[j]]
                flows[k, i] = x[j]
                lam[i] += x[j]
        else:
            # Multi-member class: symmetric intra-class equilibrium.
            # Bisection on u = t^2 for the conservation equation
            # sum_i max(m_i - g_i(u), 0) = demand, where g_i solves
            # c g^2 - u (c-1) g - u m_i = 0 (see _symmetric_class_fill).
            c1 = count - 1.0
            lo = 0.0
            hi = m_max
            u = 0.5 * hi
            for _ in range(90):
                y_sum = 0.0
                for j in range(n_pos):
                    mpj = vals[j]
                    root = np.sqrt((u * c1) ** 2 + 4.0 * count * u * mpj)
                    g = (u * c1 + root) / (2.0 * count)
                    if mpj > g:
                        y_sum += mpj - g
                if y_sum > demand:
                    lo = u
                else:
                    hi = u
                u = 0.5 * (lo + hi)
            y_sum = 0.0
            for j in range(n_pos):
                mpj = vals[j]
                root = np.sqrt((u * c1) ** 2 + 4.0 * count * u * mpj)
                g = (u * c1 + root) / (2.0 * count)
                yv = mpj - g
                if yv < 0.0:
                    yv = 0.0
                x[j] = yv
                y_sum += yv
            scale = demand / y_sum
            for j in range(n_pos):
                x[j] *= scale
                if x[j] > 0.0:
                    d += x[j] / (vals[j] - x[j])  # reprolint: allow=R003 fused kernel; gap > 0 on the support
            d /= demand
            for i in range(n):
                lam[i] -= flows[k, i]
                flows[k, i] = 0.0
            for j in range(n_pos):
                if x[j] > 0.0:
                    i = idx[j]
                    flows[k, i] = x[j]
                    lam[i] += x[j]
        diff = d - last_times[k]
        if diff < 0.0:
            diff = -diff
        norm += count * diff
        last_times[k] = d
    return norm
