"""Best-reply dynamics under observation uncertainty (paper Sec. 5).

The paper's future work names "game theoretic models for load balancing in
the context of uncertainty", and its practical remarks already hint at the
source: each user learns the available processing rates "by statistical
estimation of the run queue length of each processor" — an inherently
noisy measurement.  This module models exactly that: every time a user
takes its best-reply turn, it observes

    a_hat_i = a_i * exp(sigma * xi_i),      xi_i ~ N(0, 1)

(multiplicative lognormal error, so estimates stay positive) and responds
optimally *to the estimate*.  Optionally, users smooth their estimates
with an exponential moving average across sweeps — the statistical
estimator the paper alludes to.

Because a user acting on an over-estimate could oversubscribe a computer,
each noisy reply is projected back into the feasible region by mixing it
toward the user's previous (feasible) strategy just enough to restore
per-computer stability with a safety margin.

The headline result (see ``tests/core/test_uncertainty.py`` and the ABL4
benchmark): the dynamics no longer converge to the exact equilibrium but
hover in a neighbourhood whose radius scales with the noise, and EMA
smoothing shrinks that neighbourhood — i.e. the paper's algorithm is
robust to the measurement noise its deployment would face.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.best_response import optimal_fractions
from repro.core.equilibrium import best_response_regrets
from repro.core.model import DistributedSystem
from repro.core.nash import Initialization, initial_profile
from repro.core.strategy import StrategyProfile

__all__ = ["NoisyNashResult", "NoisyNashSolver"]

#: Per-computer load kept strictly below this fraction of the service rate
#: when projecting a noisy reply back to feasibility.
_SAFETY = 0.999


@dataclass(frozen=True)
class NoisyNashResult:
    """Outcome of a noisy best-reply run.

    Attributes
    ----------
    profile:
        Profile after the last sweep (a point of the hovering orbit, not
        an exact equilibrium).
    regret_history:
        After each sweep, the maximum benefit any user could get from a
        unilateral deviation (computed with *noiseless* information) —
        the distance-to-equilibrium trajectory.
    mean_final_regret:
        Average of the last quarter of ``regret_history`` — the radius of
        the hovering neighbourhood once the transient has passed.
    projections:
        How many noisy replies had to be projected back to feasibility.
    """

    profile: StrategyProfile
    regret_history: np.ndarray
    mean_final_regret: float
    projections: int


@dataclass(frozen=True)
class NoisyNashSolver:
    """Best-reply dynamics with lognormal observation noise.

    Parameters
    ----------
    noise:
        ``sigma`` of the multiplicative lognormal observation error
        (0 recovers the exact dynamics).
    smoothing:
        EMA weight on the *new* observation (1.0 = no smoothing; 0.2 =
        heavy smoothing).  Each user maintains its own per-computer
        estimate across its turns.
    sweeps:
        Fixed number of sweeps to run (noisy dynamics have no natural
        stopping norm — the norm never settles below the noise floor).
    seed:
        Seed for the observation-noise stream.
    """

    noise: float = 0.1
    smoothing: float = 1.0
    sweeps: int = 50
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise < 0.0:
            raise ValueError("noise must be nonnegative")
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must lie in (0, 1]")
        if self.sweeps < 1:
            raise ValueError("sweeps must be at least 1")

    def solve(
        self,
        system: DistributedSystem,
        init: Initialization | StrategyProfile = "proportional",
    ) -> NoisyNashResult:
        profile = initial_profile(system, init)
        if not profile.is_feasible(system):
            raise ValueError(
                "noisy dynamics need a feasible starting profile "
                "(NASH_0's zero profile cannot absorb projection mixing)"
            )
        fractions = profile.fractions.copy()
        m = system.n_users
        phi = system.arrival_rates
        mu = system.service_rates
        rng = np.random.default_rng(self.seed)

        estimates = np.zeros((m, system.n_computers))
        have_estimate = np.zeros(m, dtype=bool)
        regrets: list[float] = []
        projections = 0

        for _sweep in range(self.sweeps):
            for j in range(m):
                true_available = system.available_rates(fractions, j)
                observed = true_available * np.exp(
                    self.noise * rng.standard_normal(true_available.size)
                )
                if self.smoothing < 1.0 and have_estimate[j]:
                    observed = (
                        self.smoothing * observed
                        + (1.0 - self.smoothing) * estimates[j]
                    )
                estimates[j] = observed
                have_estimate[j] = True

                if observed[observed > 0.0].sum() <= phi[j]:
                    # Estimate so pessimistic the reply would be
                    # infeasible; fall back to the truth for this turn.
                    observed = true_available
                reply = optimal_fractions(observed, float(phi[j]))
                candidate = fractions.copy()
                candidate[j] = reply.fractions
                theta = _feasible_mixing(
                    candidate, fractions, phi, mu, user=j
                )
                if theta < 1.0:
                    projections += 1
                    candidate[j] = (
                        theta * reply.fractions + (1.0 - theta) * fractions[j]
                    )
                fractions = candidate
            cert = best_response_regrets(
                system, StrategyProfile(fractions.copy())
            )
            regrets.append(cert.epsilon)

        history = np.asarray(regrets, dtype=float)
        tail = history[-max(1, len(history) // 4):]
        return NoisyNashResult(
            profile=StrategyProfile(fractions),
            regret_history=history,
            mean_final_regret=float(tail.mean()),
            projections=projections,
        )


def _feasible_mixing(
    candidate: np.ndarray,
    previous: np.ndarray,
    phi: np.ndarray,
    mu: np.ndarray,
    *,
    user: int,
) -> float:
    """Largest ``theta`` keeping ``theta*new + (1-theta)*old`` stable.

    Only row ``user`` differs between the two profiles; the previous
    profile is feasible, so some ``theta > 0`` always exists.  Solves the
    per-computer linear inequality exactly (no search).
    """
    lam_prev = phi @ previous
    lam_new = phi @ candidate
    delta = lam_new - lam_prev  # contribution of the user's row change
    limit = _SAFETY * mu - lam_prev
    # theta * delta_i <= limit_i; only binding where delta_i > 0.
    binding = delta > 0.0
    if not np.any(binding):
        return 1.0
    theta = float(np.min(limit[binding] / delta[binding]))
    return float(np.clip(theta, 0.0, 1.0))
