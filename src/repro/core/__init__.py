"""Core of the reproduction: model, game, best response, Nash dynamics."""

from repro.core.classes import (
    ClassAggregation,
    ClassEquilibriumCertificate,
    ClassNashResult,
    ClassNashSolver,
    aggregate_users,
    class_best_response_regrets,
)
from repro.core.comm_delay import (
    DelayedGame,
    DelayedNashResult,
    DelayedNashSolver,
    delayed_best_response,
)
from repro.core.best_response import (
    BatchBestResponse,
    BestResponse,
    best_response,
    best_response_value,
    optimal_fractions,
    optimal_fractions_batch,
)
from repro.core.degradation import (
    CapacityExhausted,
    degraded_equilibrium,
    embed_profile,
    project_profile,
    surviving_subsystem,
)
from repro.core.dynamics import (
    DynamicsResult,
    EpisodeResult,
    run_dynamic_balancing,
)
from repro.core.equilibrium import (
    EquilibriumCertificate,
    best_response_regrets,
    is_nash_equilibrium,
    verify_equilibrium,
)
from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    NashResult,
    NashSolver,
    compute_nash_equilibrium,
    initial_profile,
)
from repro.core.jit import jit_available, jit_requested, resolve_backend
from repro.core.reference import reference_solve
from repro.core.sampled import (
    SampleCertificate,
    SampledBatchReply,
    SampledReply,
    sample_indices,
    sampled_best_reply,
    sampled_best_reply_batch,
)
from repro.core.sharding import (
    ShardedNashResult,
    partition_classes,
    solve_sharded,
)
from repro.core.strategy import FEASIBILITY_ATOL, StrategyProfile
from repro.core.uncertainty import NoisyNashResult, NoisyNashSolver
from repro.core.waterfill import (
    BatchWaterfillResult,
    InfeasibleDemand,
    WaterfillResult,
    response_time_waterfill,
    sqrt_waterfill,
    sqrt_waterfill_batch,
)

__all__ = [
    "ClassAggregation",
    "ClassEquilibriumCertificate",
    "ClassNashResult",
    "ClassNashSolver",
    "aggregate_users",
    "class_best_response_regrets",
    "jit_available",
    "jit_requested",
    "resolve_backend",
    "ShardedNashResult",
    "partition_classes",
    "solve_sharded",
    "DelayedGame",
    "DelayedNashResult",
    "DelayedNashSolver",
    "delayed_best_response",
    "BatchBestResponse",
    "BestResponse",
    "best_response",
    "best_response_value",
    "optimal_fractions",
    "optimal_fractions_batch",
    "CapacityExhausted",
    "degraded_equilibrium",
    "embed_profile",
    "project_profile",
    "surviving_subsystem",
    "DynamicsResult",
    "EpisodeResult",
    "run_dynamic_balancing",
    "EquilibriumCertificate",
    "best_response_regrets",
    "is_nash_equilibrium",
    "verify_equilibrium",
    "DistributedSystem",
    "DEFAULT_MAX_SWEEPS",
    "DEFAULT_TOLERANCE",
    "NashResult",
    "NashSolver",
    "SampleCertificate",
    "SampledBatchReply",
    "SampledReply",
    "sample_indices",
    "sampled_best_reply",
    "sampled_best_reply_batch",
    "compute_nash_equilibrium",
    "initial_profile",
    "reference_solve",
    "FEASIBILITY_ATOL",
    "StrategyProfile",
    "NoisyNashResult",
    "NoisyNashSolver",
    "BatchWaterfillResult",
    "InfeasibleDemand",
    "WaterfillResult",
    "response_time_waterfill",
    "sqrt_waterfill",
    "sqrt_waterfill_batch",
]
