"""Strategy profiles of the load balancing game.

A load balancing **strategy** of user ``j`` is the vector
``s_j = (s_j1 .. s_jn)`` of job fractions sent to each computer; a
**strategy profile** stacks the ``m`` user strategies into an ``(m, n)``
matrix.  Feasibility (paper Sec. 2) requires

* positivity   — ``s_ji >= 0``,
* conservation — ``sum_i s_ji = 1`` for every user,
* stability    — ``sum_j s_ji phi_j < mu_i`` for every computer.

:class:`StrategyProfile` is a thin immutable wrapper around the matrix with
validated constructors, feasibility predicates and the norms used by the
convergence plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import DistributedSystem

__all__ = ["StrategyProfile", "FEASIBILITY_ATOL"]

#: Absolute tolerance for the conservation constraint ``sum_i s_ji == 1``.
FEASIBILITY_ATOL = 1e-8


@dataclass(frozen=True)
class StrategyProfile:
    """Immutable ``(m, n)`` matrix of per-user load fractions."""

    fractions: np.ndarray

    def __post_init__(self) -> None:
        s = np.array(self.fractions, dtype=float, copy=True)
        if s.ndim != 2 or s.size == 0:
            raise ValueError("strategy profile must be a nonempty 2-D matrix")
        if not np.all(np.isfinite(s)):
            raise ValueError("strategy profile must be finite")
        s.setflags(write=False)
        object.__setattr__(self, "fractions", s)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n_users: int, n_computers: int) -> "StrategyProfile":
        """The all-zero profile — the NASH_0 initialization (paper Sec. 4.2.1).

        Deliberately *infeasible* (conservation is violated): the first
        best-reply sweep replaces each row by an actual allocation, with
        user 1 seeing a completely idle system.
        """
        if n_users <= 0 or n_computers <= 0:
            raise ValueError("dimensions must be positive")
        return cls(np.zeros((n_users, n_computers)))

    @classmethod
    def uniform(cls, n_users: int, n_computers: int) -> "StrategyProfile":
        """Every user spreads evenly over all computers."""
        if n_users <= 0 or n_computers <= 0:
            raise ValueError("dimensions must be positive")
        return cls(np.full((n_users, n_computers), 1.0 / n_computers))

    @classmethod
    def proportional(cls, system: DistributedSystem) -> "StrategyProfile":
        """Each user splits in proportion to processing rates.

        ``s_ji = mu_i / sum_k mu_k`` — simultaneously the PS baseline
        (Chow & Kohler) and the NASH_P initialization (paper Sec. 4.2.1).
        """
        row = system.service_rates / system.total_processing_rate
        return cls(np.tile(row, (system.n_users, 1)))

    @classmethod
    def from_loads(
        cls, system: DistributedSystem, loads: np.ndarray
    ) -> "StrategyProfile":
        """Profile in which every user splits along the given aggregate loads.

        ``s_ji = lambda_i / Phi`` for all ``j`` — how the IOS (Wardrop) and
        aggregate-GOS solutions are turned into per-user strategies when a
        fair split is wanted.
        """
        lam = np.asarray(loads, dtype=float)
        if lam.shape != (system.n_computers,):
            raise ValueError("loads must have one entry per computer")
        if np.any(lam < 0.0):
            raise ValueError("loads must be nonnegative")
        total = lam.sum()
        if not np.isclose(total, system.total_arrival_rate, rtol=1e-6):
            raise ValueError(
                "loads must sum to the total arrival rate "
                f"({total:.6g} vs {system.total_arrival_rate:.6g})"
            )
        row = lam / total
        return cls(np.tile(row, (system.n_users, 1)))

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        return int(self.fractions.shape[0])

    @property
    def n_computers(self) -> int:
        return int(self.fractions.shape[1])

    def user_strategy(self, user: int) -> np.ndarray:
        """Read-only view of user ``j``'s strategy row."""
        return self.fractions[user]

    def with_user_strategy(self, user: int, strategy) -> "StrategyProfile":
        """Functional update: replace one user's row, return a new profile."""
        row = np.asarray(strategy, dtype=float)
        if row.shape != (self.n_computers,):
            raise ValueError(
                f"strategy must have {self.n_computers} entries, got {row.shape}"
            )
        fractions = self.fractions.copy()
        fractions[user] = row
        return StrategyProfile(fractions)

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def satisfies_positivity(self, *, atol: float = FEASIBILITY_ATOL) -> bool:
        """Constraint (i): every fraction nonnegative."""
        return bool(np.all(self.fractions >= -atol))

    def satisfies_conservation(self, *, atol: float = FEASIBILITY_ATOL) -> bool:
        """Constraint (ii): every user's fractions sum to one."""
        return bool(
            np.allclose(self.fractions.sum(axis=1), 1.0, rtol=0.0, atol=atol)
        )

    def satisfies_stability(self, system: DistributedSystem) -> bool:
        """Constraint (iii): every computer's load below its service rate."""
        lam = system.loads(self.fractions)
        return bool(np.all(lam < system.service_rates))

    def is_feasible(
        self, system: DistributedSystem, *, atol: float = FEASIBILITY_ATOL
    ) -> bool:
        """All three feasibility constraints of the game."""
        return (
            self.satisfies_positivity(atol=atol)
            and self.satisfies_conservation(atol=atol)
            and self.satisfies_stability(system)
        )

    def validate(self, system: DistributedSystem) -> None:
        """Raise ``ValueError`` describing the first violated constraint."""
        if self.fractions.shape != (system.n_users, system.n_computers):
            raise ValueError(
                f"profile shape {self.fractions.shape} does not match system "
                f"({system.n_users}, {system.n_computers})"
            )
        if not self.satisfies_positivity():
            raise ValueError("positivity violated: negative load fraction")
        if not self.satisfies_conservation():
            raise ValueError("conservation violated: user fractions must sum to 1")
        if not self.satisfies_stability(system):
            raise ValueError("stability violated: some computer is overloaded")

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance_to(self, other: "StrategyProfile", *, ord: int | float = 1) -> float:
        """Entrywise norm of the difference between two profiles."""
        if self.fractions.shape != other.fractions.shape:
            raise ValueError("profiles must have identical shapes")
        diff = (self.fractions - other.fractions).ravel()
        return float(np.linalg.norm(diff, ord=ord))

    def support(self, user: int, *, atol: float = FEASIBILITY_ATOL) -> np.ndarray:
        """Indices of computers that actually receive jobs from ``user``."""
        return np.flatnonzero(self.fractions[user] > atol)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self.fractions.shape == other.fractions.shape and bool(
            np.array_equal(self.fractions, other.fractions)
        )

    def __hash__(self) -> int:
        return hash((self.fractions.shape, self.fractions.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StrategyProfile(n_users={self.n_users}, "
            f"n_computers={self.n_computers})"
        )
