"""Equilibrium verification (paper Definition 2.1).

A strategy profile is a Nash equilibrium when no user can lower its
expected response time by a unilateral feasible deviation.  Because each
user's problem is convex with the exact solver available (OPTIMAL), the
verification is *constructive*: compare every user's current cost against
its best-response cost.  The largest improvement any user could gain — the
**regret** — certifies how far a profile is from equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.best_response import optimal_fractions_batch
from repro.core.model import DistributedSystem
from repro.core.strategy import StrategyProfile

__all__ = [
    "EquilibriumCertificate",
    "best_response_regrets",
    "verify_equilibrium",
    "is_nash_equilibrium",
]


@dataclass(frozen=True)
class EquilibriumCertificate:
    """Constructive evidence about a profile's equilibrium quality.

    Attributes
    ----------
    regrets:
        ``D_j(profile) - D_j(best response)`` per user; nonnegative up to
        round-off, zero at an exact equilibrium.
    user_times:
        Expected response time of each user under the profile.
    best_response_times:
        Each user's unilaterally achievable optimum.
    epsilon:
        The maximum regret — the profile is an ``epsilon``-Nash
        equilibrium.
    """

    regrets: np.ndarray
    user_times: np.ndarray
    best_response_times: np.ndarray
    epsilon: float

    def is_equilibrium(self, tol: float) -> bool:
        return self.epsilon <= tol


def best_response_regrets(
    system: DistributedSystem, profile: StrategyProfile
) -> EquilibriumCertificate:
    """Compute the per-user regret certificate for ``profile``."""
    profile.validate(system)
    current = system.user_response_times(profile.fractions)
    # All m best responses in one batched OPTIMAL call: row j's available
    # rates are mu - (lam - phi_j s_j), i.e. the aggregate minus everyone
    # else's flow.  validate() above guarantees a stable (positive) system.
    phi = system.arrival_rates
    flows = profile.fractions * phi[:, None]
    available = (system.service_rates - flows.sum(axis=0))[None, :] + flows
    best = optimal_fractions_batch(available, phi).expected_response_times
    regrets = current - best
    return EquilibriumCertificate(
        regrets=regrets,
        user_times=current,
        best_response_times=best,
        epsilon=float(regrets.max()),
    )


def verify_equilibrium(
    system: DistributedSystem, profile: StrategyProfile, *, tol: float = 1e-6
) -> EquilibriumCertificate:
    """Raise ``ValueError`` unless ``profile`` is a ``tol``-Nash equilibrium."""
    cert = best_response_regrets(system, profile)
    if not cert.is_equilibrium(tol):
        worst = int(np.argmax(cert.regrets))
        raise ValueError(
            f"not a {tol:g}-Nash equilibrium: user {worst} can improve its "
            f"expected response time by {cert.regrets[worst]:.3e}"
        )
    return cert


def is_nash_equilibrium(
    system: DistributedSystem, profile: StrategyProfile, *, tol: float = 1e-6
) -> bool:
    """Predicate form of :func:`verify_equilibrium`."""
    return best_response_regrets(system, profile).is_equilibrium(tol)
