"""Two-level sharded class-space solving over the experiment process pool.

One :class:`~repro.core.classes.ClassNashSolver` already collapses a
million users to ``(c, n)`` state, but a single process still sweeps all
``c`` classes serially.  This module adds the second level: partition
the classes across shards, let each shard run a class-space Nash solve
against a *frozen* snapshot of the foreign load (every other shard's
flows folded into residual service rates), then reconcile flows and
repeat until the **global** epsilon-Nash certificate
(:func:`~repro.core.classes.class_best_response_regrets`) holds — the
principled early-stop knob of Chakraborty et al.'s approximate
congestion games.

Scheme per reconciliation round (block-Jacobi across shards):

1. coordinator freezes the aggregate load ``lam`` of the current global
   profile and hands shard ``s`` the residual rates
   ``mu' = mu - (lam - lam_s)`` (provably positive whenever the current
   profile is stable, since ``mu' = (mu - lam) + lam_s``);
2. each shard solves its internal class-space equilibrium on ``mu'``
   via :func:`_solve_shard` — a top-level, picklable pure function
   dispatched through :func:`repro.experiments.parallel.parallel_map`
   with ``chunksize=1`` by default (shard costs are skewed, see the
   chunking note in :mod:`repro.experiments.parallel`);
3. the coordinator writes the shard flows back and evaluates the global
   certificate; if ``epsilon <= tolerance`` the profile is an
   epsilon-Nash equilibrium and the solve stops.  A simultaneous
   write-back that overshoots into instability is backtracked by
   halving the step toward the previous (stable) profile.

Workers run with the disabled tracer (pool purity, R006/R007); all
telemetry — one ``shard.round`` event per reconciliation round and one
``shard.solve`` per shard solve — is emitted by the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro._typing import FloatArray
from repro.core.classes import (
    ClassAggregation,
    ClassEquilibriumCertificate,
    ClassNashSolver,
    class_best_response_regrets,
)
from repro.core.nash import DEFAULT_TOLERANCE
from repro.core.strategy import StrategyProfile
from repro.experiments.parallel import default_workers, parallel_map
from repro.experiments.shm import (
    ArrayRef,
    SharedArrayPlane,
    resolve,
    shm_available,
)
from repro.telemetry.trace import DISABLED, Tracer, current_tracer

__all__ = [
    "ShardedNashResult",
    "partition_classes",
    "solve_sharded",
]

IndexArray = np.ndarray

DEFAULT_MAX_ROUNDS = 50
_BACKTRACK_LIMIT = 60

#: Payload handed to a shard worker: residual service rates, the shard's
#: per-member class rates, counts and true member-sum demands, its
#: current class fractions, and the solver configuration (tolerance,
#: max_sweeps, order, seed, use_jit).
ShardPayload = tuple[
    FloatArray,
    FloatArray,
    IndexArray,
    FloatArray,
    FloatArray,
    float,
    int,
    str,
    int,
    bool | None,
]

#: Zero-copy variant: the shard's index array plus the round's frozen
#: aggregate load travel inline (both tiny), while the class matrices
#: and the round's fraction matrix arrive as shared-memory handles that
#: workers slice locally — see :mod:`repro.experiments.shm`.
ShmShardPayload = tuple[
    IndexArray,
    FloatArray,
    "ArrayRef | FloatArray",
    "ArrayRef | FloatArray",
    "ArrayRef | IndexArray",
    "ArrayRef | FloatArray",
    "ArrayRef | FloatArray",
    float,
    int,
    str,
    int,
    bool | None,
]


def partition_classes(
    aggregation: ClassAggregation, n_shards: int
) -> tuple[IndexArray, ...]:
    """Partition class indices into ``n_shards`` demand-balanced shards.

    Longest-processing-time greedy: classes in decreasing demand order,
    each assigned to the currently lightest shard — the standard 4/3
    makespan heuristic, which matters because class demands (hence
    per-shard sweep costs) are typically heavy-tailed.  Returns sorted,
    non-empty, disjoint index arrays covering every class; ``n_shards``
    is clamped to the class count.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    c = aggregation.n_classes
    n_shards = min(n_shards, c)
    loads = np.zeros(n_shards)
    members: list[list[int]] = [[] for _ in range(n_shards)]
    for k in np.argsort(-aggregation.demands, kind="stable"):
        s = int(np.argmin(loads))
        members[s].append(int(k))
        loads[s] += aggregation.demands[k]
    return tuple(
        np.asarray(sorted(group), dtype=np.intp) for group in members
    )


def _solve_shard(
    payload: ShardPayload,
) -> tuple[FloatArray, bool, int]:
    """Solve one shard's internal class-space equilibrium (pool worker).

    Top-level and pure so it pickles under spawn and satisfies the pool
    purity rule; runs with the disabled tracer — shard telemetry is the
    coordinator's job.
    """
    (
        mu_residual,
        class_rates,
        counts,
        demands,
        fractions,
        tolerance,
        max_sweeps,
        order,
        seed,
        use_jit,
    ) = payload
    sub = ClassAggregation(
        service_rates=mu_residual,
        class_rates=class_rates,
        counts=counts,
        # The parent aggregation's member-sum demands — never re-derived
        # as ``class_rates * counts``, whose rounding can break a
        # boundary-feasible shard (see aggregate_users).
        demands=demands,
    )
    solver = ClassNashSolver(
        tolerance=tolerance,
        max_sweeps=max_sweeps,
        order=order,  # type: ignore[arg-type]
        seed=seed,
        use_jit=use_jit,
    )
    result = solver.solve(sub, init=fractions, tracer=DISABLED)
    return result.class_fractions, result.converged, result.iterations


def _solve_shard_shm(
    payload: ShmShardPayload,
) -> tuple[FloatArray, bool, int]:
    """Zero-copy twin of :func:`_solve_shard` (pool worker).

    The worker resolves the shared class matrices and the round's frozen
    fraction matrix (attached once per worker, cached by content token),
    slices its shard locally, and rebuilds the residual rates with the
    *same expression* the coordinator uses on the pickling path —
    ``mu - lam + demands[shard] @ fractions[shard]`` over the same
    bytes — so both paths are bit-identical by construction (pinned by
    the parity tests in tests/core/test_sharding.py).
    """
    (
        shard,
        lam,
        mu_handle,
        class_rates_handle,
        counts_handle,
        demands_handle,
        fractions_handle,
        tolerance,
        max_sweeps,
        order,
        seed,
        use_jit,
    ) = payload
    mu = resolve(mu_handle)
    class_rates = resolve(class_rates_handle)
    counts = resolve(counts_handle)
    demands = resolve(demands_handle)
    fractions = resolve(fractions_handle)
    own_load = demands[shard] @ fractions[shard]
    mu_residual = mu - lam + own_load
    return _solve_shard(
        (
            mu_residual,
            class_rates[shard],
            counts[shard],
            demands[shard],
            fractions[shard],
            tolerance,
            max_sweeps,
            order,
            seed,
            use_jit,
        )
    )


@dataclass(frozen=True)
class ShardedNashResult:
    """Outcome of a sharded class-space solve.

    ``epsilon_history`` holds the global certificate epsilon after each
    reconciliation round; ``certificate`` is the final one, whose
    ``epsilon <= tolerance`` iff ``converged``.
    """

    class_fractions: FloatArray
    converged: bool
    rounds: int
    epsilon_history: FloatArray
    certificate: ClassEquilibriumCertificate
    aggregation: ClassAggregation
    shards: tuple[IndexArray, ...]

    @property
    def epsilon(self) -> float:
        return self.certificate.epsilon

    def expand(self) -> StrategyProfile:
        """The per-user ``(m, n)`` profile (O(m n) memory — see classes)."""
        return self.aggregation.expand(self.class_fractions)


def solve_sharded(
    aggregation: ClassAggregation,
    *,
    n_shards: int,
    tolerance: float = DEFAULT_TOLERANCE,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    shard_tolerance: float | None = None,
    shard_max_sweeps: int = 50,
    reconcile_sweeps: int = 2,
    order: str = "roundrobin",
    seed: int = 0,
    use_jit: bool | None = None,
    n_workers: int | None = None,
    chunksize: int | None = 1,
    context: str | None = None,
    use_shm: bool | None = None,
    init: FloatArray | None = None,
    tracer: Tracer | None = None,
) -> ShardedNashResult:
    """Sharded class-space Nash solve with a global certificate stop.

    ``tolerance`` bounds the *certificate epsilon* (max per-user regret),
    not the sweep norm — the solve stops exactly when the profile is a
    ``tolerance``-Nash equilibrium, however many rounds that takes.

    The shard solves are budget-capped smoothers (``shard_max_sweeps``
    sweeps to ``shard_tolerance``, default ``tolerance``): they
    equilibrate *within* shards in parallel, which is where virtually
    all sweeps go at scale.  Pure block-Jacobi across shards can stall —
    independently solved shards grab the same fast computers and the
    write-back oscillates — so each round finishes with
    ``reconcile_sweeps`` serial Gauss-Seidel sweeps over **all** classes
    (O(c) each, with fresh cross-shard information), which carry the
    per-user iteration's convergence guarantee across shard boundaries.

    ``chunksize=1`` dispatches each shard as its own pool task: shard
    costs are skewed even after LPT balancing, so batching shards into
    chunks serializes the slowest behind the cheapest (see
    :func:`repro.experiments.parallel.parallel_map`).

    ``use_shm`` selects the zero-copy data plane
    (:mod:`repro.experiments.shm`): the class matrices are published to
    shared memory once per solve and the frozen fraction matrix once per
    round, so shard tasks carry only their index array and the ``(n,)``
    aggregate load instead of re-pickling ``O(c n)`` arrays every round.
    ``None`` (default) engages the plane exactly when the solve actually
    fans out (shared memory available, more than one worker and shard);
    both paths are bit-identical (see :func:`_solve_shard_shm`).
    ``context`` pins the pool's multiprocessing start method (see
    :func:`repro.experiments.parallel.parallel_map`).
    """
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    if max_rounds < 1:
        raise ValueError("max_rounds must be at least 1")
    if reconcile_sweeps < 1:
        raise ValueError("reconcile_sweeps must be at least 1")
    inner_tol = tolerance if shard_tolerance is None else shard_tolerance
    shards = partition_classes(aggregation, n_shards)
    mu = aggregation.service_rates
    demands = aggregation.demands
    c, n = aggregation.n_classes, aggregation.n_computers

    if init is None:
        fractions = aggregation.proportional_fractions()
    else:
        fractions = np.array(init, dtype=float, copy=True)
        if fractions.shape != (c, n):
            raise ValueError(
                f"init must have shape ({c}, {n}), got {fractions.shape}"
            )

    tracer = tracer if tracer is not None else current_tracer()
    trace = tracer.enabled

    if use_shm is None:
        effective = default_workers() if n_workers is None else n_workers
        use_shm = shm_available() and effective > 1 and len(shards) > 1
    plane: SharedArrayPlane | None = None
    static_handles: tuple[ArrayRef | FloatArray, ...] = ()
    if use_shm:
        plane = SharedArrayPlane(tracer=tracer)
        # Published once per solve: service rates and the full class
        # matrices.  Workers slice their shard locally, so no per-round
        # or per-task copy of any of these ever crosses the pipe again.
        static_handles = (
            plane.publish(mu),
            plane.publish(aggregation.class_rates),
            plane.publish(aggregation.counts),
            plane.publish(demands),
        )

    epsilons: list[float] = []
    converged = False
    certificate = class_best_response_regrets(aggregation, fractions)
    rounds_done = 0
    # Reconciliation escalation: when a round barely moves the
    # certificate (strong cross-shard coupling), double the serial
    # reconciliation budget — in the limit the solve degenerates to the
    # plain class-space Gauss-Seidel, so progress is never lost.
    reconcile_budget = reconcile_sweeps

    def dispatch_round(lam: FloatArray) -> list[tuple[FloatArray, bool, int]]:
        """One block-Jacobi fan-out over the shards (both payload paths)."""
        if plane is not None:
            # Zero-copy path: the frozen fraction matrix is published
            # once for the round and released right after — a long solve
            # must not accrete one dead block per round.  Task payloads
            # carry only the shard index array, the (n,) aggregate load
            # and solver scalars.
            fractions_handle = plane.publish(fractions)
            shm_payloads: list[ShmShardPayload] = [
                (
                    shard,
                    lam,
                    *static_handles,
                    fractions_handle,
                    inner_tol,
                    shard_max_sweeps,
                    order,
                    seed,
                    use_jit,
                )
                for shard in shards
            ]
            plane.account_fanout(
                [*static_handles, fractions_handle], len(shards)
            )
            try:
                return parallel_map(
                    _solve_shard_shm,
                    shm_payloads,
                    n_workers=n_workers,
                    chunksize=chunksize,
                    context=context,
                )
            finally:
                plane.release(fractions_handle)
        payloads: list[ShardPayload] = []
        for shard in shards:
            own_load = demands[shard] @ fractions[shard]
            # Residual rates: (mu - lam) + shard's own load — positive
            # whenever the current global profile is stable.
            mu_residual = mu - lam + own_load
            payloads.append(
                (
                    mu_residual,
                    aggregation.class_rates[shard],
                    aggregation.counts[shard],
                    aggregation.demands[shard],
                    fractions[shard],
                    inner_tol,
                    shard_max_sweeps,
                    order,
                    seed,
                    use_jit,
                )
            )
        return parallel_map(
            _solve_shard,
            payloads,
            n_workers=n_workers,
            chunksize=chunksize,
            context=context,
        )

    try:
        for round_index in range(max_rounds):
            if certificate.epsilon <= tolerance:
                converged = True
                break
            round_started = perf_counter() if trace else 0.0
            lam = demands @ fractions
            results = dispatch_round(lam)
            proposal = fractions.copy()
            for shard, (shard_fractions, shard_converged, iterations) in zip(
                shards, results
            ):
                proposal[shard] = shard_fractions
                if trace:
                    tracer.emit(
                        "shard.solve",
                        round=round_index,
                        classes=int(shard.size),
                        iterations=iterations,
                        converged=shard_converged,
                    )
                    tracer.count("shard.solves")
            # The simultaneous write-back can overshoot into an unstable
            # joint profile; halve the step toward the previous (stable)
            # iterate until the aggregate fits under mu again.
            step = 1.0
            candidate = proposal
            for _ in range(_BACKTRACK_LIMIT):
                if np.all(mu - demands @ candidate > 0.0):
                    break
                step *= 0.5
                candidate = fractions + step * (proposal - fractions)
            else:
                raise RuntimeError(
                    "sharded write-back failed to restore stability"
                )
            # Cross-shard reconciliation: a few serial Gauss-Seidel
            # sweeps over all classes with fresh global information.
            # The reconciler honors the caller's update order — dropping
            # it silently ran the default order regardless of ``order=``
            # (the order-plumbing regression test in
            # tests/core/test_sharding.py pins this).
            reconciler = ClassNashSolver(
                tolerance=max(inner_tol / 10.0, 1e-15),
                max_sweeps=reconcile_budget,
                order=order,  # type: ignore[arg-type]
                seed=seed,
                use_jit=use_jit,
            )
            reconciled = reconciler.solve(
                aggregation, init=candidate, tracer=DISABLED
            )
            fractions = reconciled.class_fractions
            previous_epsilon = certificate.epsilon
            certificate = class_best_response_regrets(aggregation, fractions)
            if certificate.epsilon > 0.5 * previous_epsilon:
                reconcile_budget = min(reconcile_budget * 2, 256)
            epsilons.append(certificate.epsilon)
            rounds_done = round_index + 1
            if trace:
                elapsed = perf_counter() - round_started
                tracer.emit(
                    "shard.round",
                    round=round_index,
                    shards=len(shards),
                    epsilon=certificate.epsilon,
                    step=step,
                    elapsed_s=elapsed,
                )
                tracer.count("shard.rounds")
                tracer.observe("shard.round_seconds", elapsed)
        else:
            converged = certificate.epsilon <= tolerance
    finally:
        if plane is not None:
            plane.close()

    if not epsilons:
        # Converged before the first round (init already epsilon-Nash).
        converged = True
        epsilons.append(certificate.epsilon)
    return ShardedNashResult(
        class_fractions=fractions,
        converged=converged,
        rounds=rounds_done,
        epsilon_history=np.asarray(epsilons, dtype=float),
        certificate=certificate,
        aggregation=aggregation,
        shards=shards,
    )
