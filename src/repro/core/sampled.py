"""Power-of-k sampled best replies — partial-information NASH.

The paper's NASH scheme assumes every user observes the available rate
of **all** ``n`` computers before each best reply.  At scale that
information model is the expensive part: the ring protocol ships
``O(m n)`` observations per sweep, and real schedulers long ago moved to
*power of k choices* — probe a few queues, pick among those (Mitzenmacher
2001).  This module brings that information model to the game:

* a user always knows the availability of the computers it **currently
  uses** — its own jobs measure those queues for free;
* per reply it spends ``k`` active probes on a seeded random sample of
  computers, and
* best-responds *exactly* (the same sqrt water-fill of Theorem 2.1) over
  the union ``R = support ∪ sample``, leaving all other strategies
  untouched.

Because the reply set always contains the current support, the restricted
reply is feasible from any stable profile, conserves the user's flow, and
never increases the user's expected response time — each sweep is still a
potential-style improvement step, just over a shrunken action set.  With
``k >= n`` the sample is the full computer set and the reply degenerates
to the exact OPTIMAL response.

Determinism: every draw comes from ``default_rng((seed, sweep, index))``
— a fresh generator per (solver seed, sweep number, user index) — so the
sequential solver, the Jacobi batch and the distributed protocol all see
*identical* samples, replayable across process-pool workers (R007).

Cold starts: from the all-zero profile the first reply has an empty
support, and ``k`` random computers may not offer enough capacity.  The
reply then *widens deterministically*: a seeded permutation of the
computers is scanned in doubling prefixes until the reply set's positive
capacity exceeds the demand, each newly examined computer counted as one
more poll.  Genuine infeasibility (the full system cannot carry the
demand) still raises :class:`InfeasibleDemand`.

Poll accounting is uniform and honest: every sampled index costs one
poll even when it happens to sit in the support, so full information
(``k = n``) costs exactly ``n`` polls per reply — the baseline the
message-reduction claims in EXT11 are measured against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro._typing import FloatArray
from repro.core.best_response import (
    optimal_fractions,
    optimal_fractions_batch,
)
from repro.core.waterfill import InfeasibleDemand

__all__ = [
    "SampleCertificate",
    "SampledBatchReply",
    "SampledReply",
    "reply_set",
    "sample_indices",
    "sampled_best_reply",
    "sampled_best_reply_batch",
    "widen_reply_set",
]

IndexArray = npt.NDArray[np.intp]

#: Sub-stream tag for the widening permutation, so it never aliases the
#: sample draw made from ``(seed, sweep, index)``.
_WIDEN_STREAM = 1


def sample_indices(
    seed: int, sweep: int, index: int, n: int, k: int
) -> IndexArray:
    """The ``k`` computers player ``index`` probes in sweep ``sweep``.

    A fresh ``default_rng((seed, sweep, index))`` per call makes the
    draw a pure function of its arguments: the sequential solver, the
    Jacobi batch, the ring protocol and any process-pool worker all
    reproduce the same sample without sharing generator state.  With
    ``k >= n`` the "sample" is the full computer set ``arange(n)``.
    """
    if k < 1:
        raise ValueError("sample size k must be at least 1")
    if k >= n:
        return np.arange(n, dtype=np.intp)
    rng = np.random.default_rng((seed, sweep, index))
    drawn = rng.choice(n, size=k, replace=False)
    return np.sort(drawn.astype(np.intp))


def reply_set(own_flows: FloatArray, indices: IndexArray) -> IndexArray:
    """Reply set ``R = support(own flows) ∪ sampled indices``, sorted.

    The support comes for free (the user's own jobs measure those
    queues); the sampled indices are the paid probes.  Keeping the
    support inside ``R`` is what makes the restricted reply feasible and
    monotone from any stable profile.
    """
    support = np.flatnonzero(own_flows > 0.0)
    merged: IndexArray = np.union1d(support, indices).astype(np.intp)
    return merged


def widen_reply_set(
    reply: IndexArray,
    available: FloatArray,
    demand: float,
    *,
    seed: int,
    sweep: int,
    index: int,
) -> tuple[IndexArray, int]:
    """Grow ``reply`` until its positive capacity strictly exceeds ``demand``.

    Scans a seeded permutation of all computers in doubling prefixes —
    the deterministic "keep probing" fallback for cold starts whose
    initial sample cannot carry the demand.  Returns the (possibly
    unchanged) reply set and the number of **additional** polls spent,
    i.e. newly examined computers.  Raises :class:`InfeasibleDemand`
    once the scan covers every computer and the demand still does not
    fit — at that point the infeasibility is a property of the system,
    not of the sample.
    """
    capacity = float(np.clip(available[reply], 0.0, None).sum())
    if demand < capacity:
        return reply, 0
    n = available.shape[0]
    widen_rng = np.random.default_rng((seed, sweep, index, _WIDEN_STREAM))
    perm = widen_rng.permutation(n).astype(np.intp)
    polls = 0
    size = max(2 * int(reply.size), 2)
    while True:
        prefix = perm[: min(size, n)]
        widened: IndexArray = np.union1d(reply, prefix).astype(np.intp)
        polls += int(widened.size - reply.size)
        reply = widened
        capacity = float(np.clip(available[reply], 0.0, None).sum())
        if demand < capacity:
            return reply, polls
        if size >= n:
            raise InfeasibleDemand(demand, capacity)
        size *= 2


@dataclass(frozen=True)
class SampledReply:
    """One sampled best reply.

    Attributes
    ----------
    flows:
        The player's new flow row, full length ``(n,)`` — zero outside
        the reply set.
    expected_response_time:
        The player's expected response time under the new flows.
    reply_set:
        The set ``R`` the water-fill actually ran over.
    polls:
        Probes spent: the sample size plus any widening scan.
    """

    flows: FloatArray
    expected_response_time: float
    reply_set: IndexArray
    polls: int


def sampled_best_reply(
    available: FloatArray,
    own_flows: FloatArray,
    job_rate: float,
    *,
    seed: int,
    sweep: int,
    index: int,
    k: int,
) -> SampledReply:
    """Best reply restricted to ``support ∪ k-sample`` (Gauss-Seidel form).

    ``available`` holds the player's foreign-free rates
    ``mu - lam + own`` over **all** computers; only the entries inside
    the reply set are consulted, which is exactly the information the
    player has (free feedback on its support, ``k`` paid probes).  The
    water-fill itself is the unmodified OPTIMAL algorithm
    (:func:`~repro.core.best_response.optimal_fractions`) on the
    restricted rate vector, so with ``k >= n`` this *is* the exact best
    response.
    """
    n = available.shape[0]
    indices = sample_indices(seed, sweep, index, n, k)
    chosen = reply_set(own_flows, indices)
    polls = int(indices.size)
    chosen, extra = widen_reply_set(
        chosen, available, job_rate, seed=seed, sweep=sweep, index=index
    )
    polls += extra
    reply = optimal_fractions(available[chosen], job_rate)
    flows = np.zeros(n)
    flows[chosen] = reply.fractions * job_rate
    return SampledReply(
        flows=flows,
        expected_response_time=float(reply.expected_response_time),
        reply_set=chosen,
        polls=polls,
    )


@dataclass(frozen=True)
class SampledBatchReply:
    """All players' sampled best replies against one frozen profile.

    ``flows`` is the ``(m, n)`` matrix of new flow rows;
    ``expected_response_times`` the per-player times under them;
    ``polls`` the total probes spent across the batch.
    """

    flows: FloatArray
    expected_response_times: FloatArray
    polls: int


def sampled_best_reply_batch(
    available: FloatArray,
    own_flows: FloatArray,
    job_rates: FloatArray,
    *,
    seed: int,
    sweep: int,
    k: int,
) -> SampledBatchReply:
    """Jacobi form: every player's sampled reply to the *same* profile.

    Row ``j`` of ``available`` is player ``j``'s foreign-free rate
    vector.  Computers outside a player's reply set are masked to zero
    availability, which the batched water-fill
    (:func:`~repro.core.waterfill.sqrt_waterfill_batch`) already treats
    as unavailable per row — so the whole sampled sweep is one
    vectorized kernel call after an O(m·k) masking pass.
    """
    rates = np.asarray(job_rates, dtype=float)
    m, n = available.shape
    masked = np.zeros_like(available)
    polls = 0
    for j in range(m):
        indices = sample_indices(seed, sweep, j, n, k)
        chosen = reply_set(own_flows[j], indices)
        polls += int(indices.size)
        chosen, extra = widen_reply_set(
            chosen, available[j], float(rates[j]),
            seed=seed, sweep=sweep, index=j,
        )
        polls += extra
        masked[j, chosen] = available[j, chosen]
    replies = optimal_fractions_batch(masked, rates)
    flows = np.asarray(replies.fractions, dtype=float) * rates[:, None]
    times = np.asarray(replies.expected_response_times, dtype=float)
    return SampledBatchReply(flows=flows, expected_response_times=times, polls=polls)


@dataclass(frozen=True)
class SampleCertificate:
    """What a sampled solve knew, spent and actually achieved.

    ``sampled_norm`` is the last sweep norm *as the sampled players saw
    it* — movement over reply sets only.  ``epsilon`` is the **true**
    global certificate (max per-user regret against the exact,
    full-information best response), evaluated once at the end: the
    honest answer to "how far from the real Nash equilibrium did partial
    information land us?".  ``polls`` counts every availability probe
    spent, widening scans included; with ``k = n`` it is exactly
    ``players × n × sweeps``, the full-information baseline.
    """

    k: int
    n_computers: int
    sweeps: int
    polls: int
    sampled_norm: float
    epsilon: float

    @property
    def full_information(self) -> bool:
        return self.k >= self.n_computers
