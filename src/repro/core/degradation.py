"""Graceful degradation on a partially failed computer set.

When computers go offline mid-run the load balancing game does not stop —
it becomes the *same* game on the surviving computer set, provided that
set still has enough aggregate capacity (``Phi < sum of surviving mu_i``,
the stability condition of paper Sec. 2 restricted to the live machines).
This module gives the failure-handling layers one vocabulary for that
transition:

* :class:`CapacityExhausted` — the typed error raised when the surviving
  capacity cannot carry the offered load, with full diagnostics attached;
* :func:`surviving_subsystem` — the degraded
  :class:`~repro.core.model.DistributedSystem` on the online computers;
* :func:`project_profile` — re-project a strategy (or flow) matrix onto
  the online computer set, preserving each user's total;
* :func:`embed_profile` — lift a degraded-system profile back to the full
  computer width (zero columns on offline computers);
* :func:`degraded_equilibrium` — the Nash equilibrium of the degraded
  game, expressed at full width so it compares directly against a
  recovering protocol run.

The degraded-equilibrium guarantee proved useful in the fault-tolerance
experiments: a protocol run that loses computers mid-flight converges to
exactly the equilibrium a from-scratch solve on the survivors computes.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import DistributedSystem
from repro.core.nash import (
    DEFAULT_MAX_SWEEPS,
    DEFAULT_TOLERANCE,
    Initialization,
    NashResult,
    compute_nash_equilibrium,
)
from repro.core.strategy import FEASIBILITY_ATOL, StrategyProfile

__all__ = [
    "CapacityExhausted",
    "surviving_subsystem",
    "project_profile",
    "embed_profile",
    "degraded_equilibrium",
]


class CapacityExhausted(RuntimeError):
    """The surviving computers cannot carry the offered load.

    Raised instead of silently iterating toward an infeasible fixed point
    when ``Phi >= sum of surviving mu_i``.  Diagnostics are attached as
    attributes so supervisors can log or act on them.

    Attributes
    ----------
    total_arrival_rate:
        The offered load ``Phi`` (jobs/sec).
    surviving_capacity:
        Aggregate processing rate of the online computers.
    deficit:
        ``Phi - surviving_capacity`` (nonnegative).
    offline:
        Indices of the offline computers.
    """

    def __init__(
        self,
        total_arrival_rate: float,
        surviving_capacity: float,
        offline: tuple[int, ...],
    ):
        self.total_arrival_rate = float(total_arrival_rate)
        self.surviving_capacity = float(surviving_capacity)
        self.deficit = self.total_arrival_rate - self.surviving_capacity
        self.offline = tuple(offline)
        super().__init__(
            "surviving capacity exhausted: offered load %.6g jobs/s exceeds "
            "the %.6g jobs/s left after computers %s went offline "
            "(deficit %.6g)"
            % (
                self.total_arrival_rate,
                self.surviving_capacity,
                list(self.offline),
                self.deficit,
            )
        )


def _as_online_mask(online_mask, n_computers: int) -> np.ndarray:
    mask = np.asarray(online_mask, dtype=bool)
    if mask.shape != (n_computers,):
        raise ValueError(
            f"online mask must have one entry per computer "
            f"({n_computers}), got shape {mask.shape}"
        )
    return mask


def surviving_subsystem(
    system: DistributedSystem, online_mask
) -> DistributedSystem:
    """The degraded system on the online computers, same user population.

    Raises
    ------
    CapacityExhausted
        If the total arrival rate is not strictly below the surviving
        aggregate processing rate (including the no-survivors case).

    >>> from repro.workloads import paper_table1_system
    >>> full = paper_table1_system(utilization=0.5)
    >>> mask = [True] * full.n_computers
    >>> mask[0] = False
    >>> surviving_subsystem(full, mask).n_computers
    15
    """
    mask = _as_online_mask(online_mask, system.n_computers)
    capacity = float(system.service_rates[mask].sum()) if mask.any() else 0.0
    offered = system.total_arrival_rate
    if not offered < capacity:
        raise CapacityExhausted(
            offered, capacity, tuple(np.flatnonzero(~mask).tolist())
        )
    names = tuple(
        name for name, alive in zip(system.computer_names, mask) if alive
    )
    return DistributedSystem(
        service_rates=system.service_rates[mask],
        arrival_rates=system.arrival_rates,
        computer_names=names,
        user_names=system.user_names,
    )


def project_profile(
    matrix,
    online_mask,
    *,
    fallback_rates=None,
    atol: float = FEASIBILITY_ATOL,
) -> np.ndarray:
    """Re-project a per-user allocation matrix onto the online computers.

    Works in either fractions space (rows summing to 1) or flows space
    (rows summing to ``phi_j``): offline columns are zeroed and each row
    is rescaled so its total is preserved.  A row whose entire mass sat on
    offline computers is redistributed proportionally to
    ``fallback_rates`` over the online set (service rates, typically);
    without fallback rates it is spread uniformly.  Rows that were already
    (numerically) zero stay zero — an all-zero row is the NASH_0 "not yet
    allocated" state, not a stranded allocation.
    """
    s = np.array(matrix, dtype=float, copy=True)
    if s.ndim != 2:
        raise ValueError("allocation matrix must be 2-D")
    mask = _as_online_mask(online_mask, s.shape[1])
    if not mask.any():
        raise ValueError("cannot project onto an empty computer set")
    original_totals = s.sum(axis=1)
    s[:, ~mask] = 0.0
    surviving_totals = s.sum(axis=1)

    if fallback_rates is not None:
        weights = np.asarray(fallback_rates, dtype=float)[mask]
        if np.any(weights <= 0.0):
            raise ValueError("fallback rates must be positive")
    else:
        weights = np.ones(int(mask.sum()))
    fallback_row = np.zeros(s.shape[1])
    fallback_row[mask] = weights / weights.sum()

    # Row-wise, without a Python loop: rows with mass (``allocated``) are
    # rescaled to their original total; rows whose surviving mass vanished
    # (``stranded``) are replaced by the fallback row; never-allocated rows
    # stay untouched.
    allocated = original_totals > atol
    stranded = allocated & (surviving_totals <= atol * original_totals)
    rescale = allocated & ~stranded
    scale = np.ones_like(original_totals)
    np.divide(
        original_totals, surviving_totals, out=scale, where=rescale
    )
    s[rescale] *= scale[rescale, None]
    s[stranded] = fallback_row[None, :] * original_totals[stranded, None]
    return s


def embed_profile(sub_fractions, online_mask) -> np.ndarray:
    """Lift a degraded-system ``(m, n_online)`` matrix to full width.

    Offline columns come back as zeros, so the result is a feasible
    profile of the *full* system that routes nothing to dead computers.
    """
    sub = np.asarray(sub_fractions, dtype=float)
    mask = np.asarray(online_mask, dtype=bool)
    if sub.ndim != 2 or sub.shape[1] != int(mask.sum()):
        raise ValueError(
            "sub-profile width must equal the number of online computers"
        )
    full = np.zeros((sub.shape[0], mask.size))
    full[:, mask] = sub
    return full


def degraded_equilibrium(
    system: DistributedSystem,
    online_mask,
    *,
    init: Initialization | StrategyProfile = "proportional",
    tolerance: float = DEFAULT_TOLERANCE,
    max_sweeps: int = DEFAULT_MAX_SWEEPS,
) -> NashResult:
    """Nash equilibrium of the degraded game, at full computer width.

    Solves the game from scratch on the surviving subsystem and embeds
    the profile back over all computers (zero on the offline ones) — the
    reference a recovering protocol run must reproduce.

    Raises
    ------
    CapacityExhausted
        If the surviving capacity cannot carry the offered load.
    """
    mask = _as_online_mask(online_mask, system.n_computers)
    sub = surviving_subsystem(system, mask)
    result = compute_nash_equilibrium(
        sub, init=init, tolerance=tolerance, max_sweeps=max_sweeps
    )
    full = StrategyProfile(embed_profile(result.profile.fractions, mask))
    return NashResult(
        profile=full,
        converged=result.converged,
        iterations=result.iterations,
        norm_history=result.norm_history,
        user_times=result.user_times,
    )
