"""Closed-form water-filling solvers behind the paper's algorithms.

Two related allocation problems over parallel M/M/1 queues admit
sorted-prefix closed forms, and both appear in the paper:

* **sqrt water-fill** — minimize total delay ``sum_i x_i / (a_i - x_i)``
  subject to ``sum x_i = d``, ``x_i >= 0``.  KKT equalizes the marginal
  delay ``a_i / (a_i - x_i)^2`` over the support, giving
  ``x_i = a_i - t * sqrt(a_i)`` with a single threshold ``t``.  This is the
  core of the paper's Theorem 2.1 (user best response, ``a`` = available
  rates) and, applied to the whole system (``a = mu``, ``d = Phi``), the
  aggregate loads of the Global Optimal Scheme (Tantawi & Towsley 1985,
  Kim & Kameda 1992, Tang & Chanson 2000).

* **response-time water-fill** — the Wardrop condition of the Individual
  Optimal Scheme: all *used* computers have equal expected response time
  ``1/(a_i - x_i) = tau`` and unused ones are slower even when idle,
  giving ``x_i = a_i - 1/tau``.

Both run in ``O(n log n)`` (the sort dominates) and are fully vectorized:
the threshold for every candidate support prefix is computed with
cumulative sums and the valid prefix selected with a mask, with no Python
loop over computers.

For many-user workloads :func:`sqrt_waterfill_batch` solves ``m``
independent sqrt fills at once on an ``(m, n)`` matrix of available rates
with axis-wise ``argsort``/``cumsum`` — no Python loop over users — which
is what lets the NASH Jacobi sweep, the equilibrium certificate and the
scheme baselines scale to thousands of users (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "InfeasibleDemand",
    "WaterfillResult",
    "BatchWaterfillResult",
    "sqrt_waterfill",
    "sqrt_waterfill_batch",
    "response_time_waterfill",
]


class InfeasibleDemand(ValueError):
    """A water-fill demand at or above the total available capacity.

    Subclasses :class:`ValueError`, so existing ``except ValueError``
    call sites keep working; new code should catch this type and read the
    diagnostics off the exception instead of parsing the message.

    Attributes
    ----------
    demand:
        The offered demand (jobs/sec).
    capacity:
        Total strictly-positive available rate the demand had to fit under.
    user:
        Index of the offending row in a batched fill, ``None`` for the
        scalar solvers.
    """

    def __init__(self, demand: float, capacity: float, user: int | None = None):
        self.demand = float(demand)
        self.capacity = float(capacity)
        self.user = user
        prefix = "demand" if user is None else f"user {user}: demand"
        super().__init__(
            "%s %.6g must be strictly below the total available rate %.6g"
            % (prefix, self.demand, self.capacity)
        )


@dataclass(frozen=True)
class WaterfillResult:
    """Solution of a water-filling problem.

    Attributes
    ----------
    loads:
        Optimal allocation ``x`` in the *original* (unsorted) computer
        order; zero outside the support.
    threshold:
        The Lagrangian threshold — ``t`` for the sqrt fill (so that
        ``x_i = a_i - t sqrt(a_i)`` on the support), or the common response
        time ``tau`` for the Wardrop fill.
    support:
        Sorted array of original indices of the computers that receive a
        strictly positive load.
    """

    loads: np.ndarray
    threshold: float
    support: np.ndarray


def _validate_inputs(capacities, demand: float) -> np.ndarray:
    a = np.asarray(capacities, dtype=float)
    if a.ndim != 1 or a.size == 0:
        raise ValueError("capacities must be a nonempty 1-D vector")
    if not np.all(np.isfinite(a)):
        raise ValueError("capacities must be finite")
    if not np.isfinite(demand) or demand < 0.0:
        raise ValueError("demand must be finite and nonnegative")
    return a


def sqrt_waterfill(capacities, demand: float) -> WaterfillResult:
    """Delay-minimizing allocation of ``demand`` over parallel M/M/1 servers.

    Solves ``min sum_i x_i / (a_i - x_i)  s.t.  sum_i x_i = demand,
    x_i >= 0`` where ``a_i`` are the (available) processing rates.  This is
    the optimization problem OPT_j of the paper, whose solution structure
    is Theorem 2.1.

    Computers with nonpositive capacity are treated as unavailable (they
    can legitimately occur transiently if a caller constructs available
    rates from an infeasible profile) and always receive zero load.

    Raises
    ------
    ValueError
        If ``demand`` is not strictly less than the total positive
        capacity (the allocation would be infeasible/unstable).
    """
    a = _validate_inputs(capacities, demand)
    loads = np.zeros_like(a)
    if demand == 0.0:  # reprolint: allow=R002 exact-sentinel
        return WaterfillResult(loads=loads, threshold=float("inf"),
                               support=np.array([], dtype=np.intp))

    usable = a > 0.0
    if demand >= a[usable].sum():
        raise InfeasibleDemand(demand, float(a[usable].sum()))

    # Work on the usable computers, sorted by capacity descending.
    idx = np.flatnonzero(usable)
    order = idx[np.argsort(-a[idx], kind="stable")]
    a_sorted = a[order]
    roots = np.sqrt(a_sorted)

    # Threshold t_c for every candidate support {1..c}:
    #   t_c = (sum_{i<=c} a_i - demand) / (sum_{i<=c} sqrt(a_i)).
    cum_a = np.cumsum(a_sorted)
    cum_root = np.cumsum(roots)
    thresholds = (cum_a - demand) / cum_root

    # The optimal support is the largest prefix in which the slowest
    # included computer still gets a positive share: sqrt(a_c) > t_c.
    # (Equivalently: the paper's OPTIMAL while-loop, which shrinks the
    # candidate set while t * sqrt(a_c) >= a_c, scanned from below.)
    valid = roots > thresholds
    if not valid[0]:
        # Cannot happen for demand > 0: with c = 1,
        # t_1 = (a_1 - d)/sqrt(a_1) < sqrt(a_1).
        raise AssertionError("sqrt water-fill: no valid support prefix")
    cut = int(np.flatnonzero(valid).max()) + 1

    t = float(thresholds[cut - 1])
    support = order[:cut]
    loads[support] = a[support] - t * np.sqrt(a[support])
    # Guard against tiny negative round-off on the boundary computer.
    np.maximum(loads, 0.0, out=loads)
    scale = demand / loads.sum()
    loads *= scale
    return WaterfillResult(loads=loads, threshold=t, support=np.sort(support))


@dataclass(frozen=True)
class BatchWaterfillResult:
    """Solutions of ``m`` independent sqrt water-filling problems.

    Attributes
    ----------
    loads:
        ``(m, n)`` matrix of optimal allocations, row ``j`` in the
        *original* computer order; zero outside row ``j``'s support.
    thresholds:
        ``(m,)`` vector of Lagrangian thresholds ``t_j`` (``inf`` for
        zero-demand rows).
    support_mask:
        ``(m, n)`` boolean matrix; ``support_mask[j, i]`` is true iff
        computer ``i`` is in row ``j``'s optimal support.
    """

    loads: np.ndarray
    thresholds: np.ndarray
    support_mask: np.ndarray

    def support(self, row: int) -> np.ndarray:
        """Sorted original indices of row ``row``'s support (scalar-compatible)."""
        return np.flatnonzero(self.support_mask[row])


def sqrt_waterfill_batch(capacities, demands) -> BatchWaterfillResult:
    """Solve ``m`` independent sqrt water-fills in one vectorized shot.

    Row ``j`` of ``capacities`` is the available-rate vector of an
    independent instance of the problem solved by :func:`sqrt_waterfill`
    with demand ``demands[j]``.  All rows are solved together with
    axis-wise ``argsort``/``cumsum`` — no Python loop over rows — so the
    per-row cost amortizes to a few vector operations.  Nonpositive
    capacities are treated as unavailable per row, exactly like the
    scalar solver; zero-demand rows come back with zero loads, an
    infinite threshold and an empty support.

    Raises
    ------
    InfeasibleDemand
        If any row's demand is not strictly below that row's total
        positive capacity; carries the offending row index as ``.user``.
    """
    a = np.asarray(capacities, dtype=float)
    d = np.asarray(demands, dtype=float)
    if a.ndim != 2 or a.size == 0:
        raise ValueError("capacities must be a nonempty (m, n) matrix")
    if d.shape != (a.shape[0],):
        raise ValueError("demands must have one entry per capacity row")
    if not np.all(np.isfinite(a)):
        raise ValueError("capacities must be finite")
    if not np.all(np.isfinite(d)) or np.any(d < 0.0):
        raise ValueError("demands must be finite and nonnegative")
    m, n = a.shape

    usable = a > 0.0
    a_usable = np.where(usable, a, 0.0)
    active = d > 0.0
    capacity = a_usable.sum(axis=1)
    infeasible = active & (d >= capacity)
    if np.any(infeasible):
        j = int(np.flatnonzero(infeasible)[0])
        raise InfeasibleDemand(float(d[j]), float(capacity[j]), user=j)

    # Sort each row's usable computers by capacity descending; unusable
    # computers sink to the end (sort key -inf) with zero contribution.
    key = np.where(usable, -a, np.inf)
    order = np.argsort(key, axis=1, kind="stable")
    a_sorted = np.take_along_axis(a_usable, order, axis=1)
    roots = np.sqrt(a_sorted)

    # Per-row threshold for every candidate support prefix {1..c}:
    #   t_c = (sum_{i<=c} a_i - d) / (sum_{i<=c} sqrt(a_i)).
    cum_a = np.cumsum(a_sorted, axis=1)
    cum_root = np.cumsum(roots, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        thresholds = (cum_a - d[:, None]) / cum_root
    # Largest prefix whose slowest member still gets a positive share.
    valid = roots > thresholds
    if np.any(active & ~valid[:, 0]):
        # Cannot happen for d > 0 (t_1 < sqrt(a_1)); mirrors the scalar
        # solver's defensive assertion.
        raise AssertionError("sqrt water-fill: no valid support prefix")
    cuts = n - valid[:, ::-1].argmax(axis=1)
    cuts = np.where(active, cuts, 0)

    t = np.take_along_axis(
        thresholds, np.maximum(cuts - 1, 0)[:, None], axis=1
    )
    in_support_sorted = np.arange(n)[None, :] < cuts[:, None]
    loads_sorted = np.where(in_support_sorted, a_sorted - t * roots, 0.0)
    # Guard against tiny negative round-off on each boundary computer,
    # then rescale each row so it meets its demand exactly.
    np.maximum(loads_sorted, 0.0, out=loads_sorted)
    row_sums = loads_sorted.sum(axis=1)
    scale = np.divide(
        d, row_sums, out=np.zeros_like(d), where=row_sums > 0.0
    )
    loads_sorted *= scale[:, None]

    loads = np.zeros_like(a)
    np.put_along_axis(loads, order, loads_sorted, axis=1)
    support_mask = np.zeros((m, n), dtype=bool)
    np.put_along_axis(support_mask, order, in_support_sorted, axis=1)
    out_thresholds = np.where(active, t[:, 0], np.inf)
    return BatchWaterfillResult(
        loads=loads, thresholds=out_thresholds, support_mask=support_mask
    )


def response_time_waterfill(capacities, demand: float) -> WaterfillResult:
    """Wardrop (individually optimal) allocation over parallel M/M/1 servers.

    Finds loads such that every used computer has the same expected
    response time ``tau = 1 / (a_i - x_i)`` while every unused computer is
    slower even when empty (``1/a_k >= tau``).  This is the equilibrium the
    paper's IOS baseline computes (Kameda et al. 1997): the limit of
    selfish optimization by individual *jobs* rather than users.
    """
    a = _validate_inputs(capacities, demand)
    loads = np.zeros_like(a)
    if demand == 0.0:  # reprolint: allow=R002 exact-sentinel
        return WaterfillResult(loads=loads, threshold=float("inf"),
                               support=np.array([], dtype=np.intp))

    usable = a > 0.0
    if demand >= a[usable].sum():
        raise InfeasibleDemand(demand, float(a[usable].sum()))

    idx = np.flatnonzero(usable)
    order = idx[np.argsort(-a[idx], kind="stable")]
    a_sorted = a[order]

    # For support {1..c} the common residual rate is
    #   g_c = 1/tau_c = (sum_{i<=c} a_i - demand) / c,
    # and inclusion of computer c is consistent iff a_c > g_c.
    counts = np.arange(1, a_sorted.size + 1, dtype=float)
    residual = (np.cumsum(a_sorted) - demand) / counts
    valid = a_sorted > residual
    if not valid[0]:
        raise AssertionError("response-time water-fill: no valid support prefix")
    cut = int(np.flatnonzero(valid).max()) + 1

    g = float(residual[cut - 1])
    support = order[:cut]
    loads[support] = a[support] - g
    np.maximum(loads, 0.0, out=loads)
    scale = demand / loads.sum()
    loads *= scale
    return WaterfillResult(loads=loads, threshold=1.0 / g, support=np.sort(support))
