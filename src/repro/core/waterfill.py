"""Closed-form water-filling solvers behind the paper's algorithms.

Two related allocation problems over parallel M/M/1 queues admit
sorted-prefix closed forms, and both appear in the paper:

* **sqrt water-fill** — minimize total delay ``sum_i x_i / (a_i - x_i)``
  subject to ``sum x_i = d``, ``x_i >= 0``.  KKT equalizes the marginal
  delay ``a_i / (a_i - x_i)^2`` over the support, giving
  ``x_i = a_i - t * sqrt(a_i)`` with a single threshold ``t``.  This is the
  core of the paper's Theorem 2.1 (user best response, ``a`` = available
  rates) and, applied to the whole system (``a = mu``, ``d = Phi``), the
  aggregate loads of the Global Optimal Scheme (Tantawi & Towsley 1985,
  Kim & Kameda 1992, Tang & Chanson 2000).

* **response-time water-fill** — the Wardrop condition of the Individual
  Optimal Scheme: all *used* computers have equal expected response time
  ``1/(a_i - x_i) = tau`` and unused ones are slower even when idle,
  giving ``x_i = a_i - 1/tau``.

Both run in ``O(n log n)`` (the sort dominates) and are fully vectorized:
the threshold for every candidate support prefix is computed with
cumulative sums and the valid prefix selected with a mask, with no Python
loop over computers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WaterfillResult", "sqrt_waterfill", "response_time_waterfill"]


@dataclass(frozen=True)
class WaterfillResult:
    """Solution of a water-filling problem.

    Attributes
    ----------
    loads:
        Optimal allocation ``x`` in the *original* (unsorted) computer
        order; zero outside the support.
    threshold:
        The Lagrangian threshold — ``t`` for the sqrt fill (so that
        ``x_i = a_i - t sqrt(a_i)`` on the support), or the common response
        time ``tau`` for the Wardrop fill.
    support:
        Sorted array of original indices of the computers that receive a
        strictly positive load.
    """

    loads: np.ndarray
    threshold: float
    support: np.ndarray


def _validate_inputs(capacities, demand: float) -> np.ndarray:
    a = np.asarray(capacities, dtype=float)
    if a.ndim != 1 or a.size == 0:
        raise ValueError("capacities must be a nonempty 1-D vector")
    if not np.all(np.isfinite(a)):
        raise ValueError("capacities must be finite")
    if not np.isfinite(demand) or demand < 0.0:
        raise ValueError("demand must be finite and nonnegative")
    return a


def sqrt_waterfill(capacities, demand: float) -> WaterfillResult:
    """Delay-minimizing allocation of ``demand`` over parallel M/M/1 servers.

    Solves ``min sum_i x_i / (a_i - x_i)  s.t.  sum_i x_i = demand,
    x_i >= 0`` where ``a_i`` are the (available) processing rates.  This is
    the optimization problem OPT_j of the paper, whose solution structure
    is Theorem 2.1.

    Computers with nonpositive capacity are treated as unavailable (they
    can legitimately occur transiently if a caller constructs available
    rates from an infeasible profile) and always receive zero load.

    Raises
    ------
    ValueError
        If ``demand`` is not strictly less than the total positive
        capacity (the allocation would be infeasible/unstable).
    """
    a = _validate_inputs(capacities, demand)
    loads = np.zeros_like(a)
    if demand == 0.0:  # reprolint: allow=R002 exact-sentinel
        return WaterfillResult(loads=loads, threshold=float("inf"),
                               support=np.array([], dtype=np.intp))

    usable = a > 0.0
    if demand >= a[usable].sum():
        raise ValueError(
            "demand %.6g must be strictly below the total available rate %.6g"
            % (demand, a[usable].sum())
        )

    # Work on the usable computers, sorted by capacity descending.
    idx = np.flatnonzero(usable)
    order = idx[np.argsort(-a[idx], kind="stable")]
    a_sorted = a[order]
    roots = np.sqrt(a_sorted)

    # Threshold t_c for every candidate support {1..c}:
    #   t_c = (sum_{i<=c} a_i - demand) / (sum_{i<=c} sqrt(a_i)).
    cum_a = np.cumsum(a_sorted)
    cum_root = np.cumsum(roots)
    thresholds = (cum_a - demand) / cum_root

    # The optimal support is the largest prefix in which the slowest
    # included computer still gets a positive share: sqrt(a_c) > t_c.
    # (Equivalently: the paper's OPTIMAL while-loop, which shrinks the
    # candidate set while t * sqrt(a_c) >= a_c, scanned from below.)
    valid = roots > thresholds
    if not valid[0]:
        # Cannot happen for demand > 0: with c = 1,
        # t_1 = (a_1 - d)/sqrt(a_1) < sqrt(a_1).
        raise AssertionError("sqrt water-fill: no valid support prefix")
    cut = int(np.flatnonzero(valid).max()) + 1

    t = float(thresholds[cut - 1])
    support = order[:cut]
    loads[support] = a[support] - t * np.sqrt(a[support])
    # Guard against tiny negative round-off on the boundary computer.
    np.maximum(loads, 0.0, out=loads)
    scale = demand / loads.sum()
    loads *= scale
    return WaterfillResult(loads=loads, threshold=t, support=np.sort(support))


def response_time_waterfill(capacities, demand: float) -> WaterfillResult:
    """Wardrop (individually optimal) allocation over parallel M/M/1 servers.

    Finds loads such that every used computer has the same expected
    response time ``tau = 1 / (a_i - x_i)`` while every unused computer is
    slower even when empty (``1/a_k >= tau``).  This is the equilibrium the
    paper's IOS baseline computes (Kameda et al. 1997): the limit of
    selfish optimization by individual *jobs* rather than users.
    """
    a = _validate_inputs(capacities, demand)
    loads = np.zeros_like(a)
    if demand == 0.0:  # reprolint: allow=R002 exact-sentinel
        return WaterfillResult(loads=loads, threshold=float("inf"),
                               support=np.array([], dtype=np.intp))

    usable = a > 0.0
    if demand >= a[usable].sum():
        raise ValueError(
            "demand %.6g must be strictly below the total available rate %.6g"
            % (demand, a[usable].sum())
        )

    idx = np.flatnonzero(usable)
    order = idx[np.argsort(-a[idx], kind="stable")]
    a_sorted = a[order]

    # For support {1..c} the common residual rate is
    #   g_c = 1/tau_c = (sum_{i<=c} a_i - demand) / c,
    # and inclusion of computer c is consistent iff a_c > g_c.
    counts = np.arange(1, a_sorted.size + 1, dtype=float)
    residual = (np.cumsum(a_sorted) - demand) / counts
    valid = a_sorted > residual
    if not valid[0]:
        raise AssertionError("response-time water-fill: no valid support prefix")
    cut = int(np.flatnonzero(valid).max()) + 1

    g = float(residual[cut - 1])
    support = order[:cut]
    loads[support] = a[support] - g
    np.maximum(loads, 0.0, out=loads)
    scale = demand / loads.sum()
    loads *= scale
    return WaterfillResult(loads=loads, threshold=1.0 / g, support=np.sort(support))
