"""Tolerance-based float comparisons for rates, fractions and delays.

Every quantity this reproduction manipulates — arrival rates, strategy
fractions, expected response times — is the output of floating-point
water-fills, matrix products or iterative optimizers.  Exact ``==``
against such values encodes an invariant that round-off falsifies; the
static-analysis rule R002 (:mod:`repro.analysis`) therefore bans it and
points here.

The defaults mirror :func:`math.isclose` (relative tolerance ``1e-9``)
with a small absolute floor so comparisons against zero behave.
"""

from __future__ import annotations

import math

__all__ = ["close", "is_zero"]

#: Default relative tolerance, matching :func:`math.isclose`.
REL_TOL = 1e-9

#: Default absolute floor; ``math.isclose`` defaults this to 0.0, which
#: makes every comparison against 0.0 fail — rarely what rate/fraction
#: arithmetic wants.
ABS_TOL = 1e-12


def close(a: float, b: float, *, rel_tol: float = REL_TOL,
          abs_tol: float = ABS_TOL) -> bool:
    """``True`` when ``a`` and ``b`` agree up to round-off."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(x: float, *, abs_tol: float = ABS_TOL, scale: float = 1.0) -> bool:
    """``True`` when ``x`` is zero up to round-off.

    ``scale`` sets the magnitude of the arithmetic that produced ``x``
    (e.g. the total demand a share was computed from), so the effective
    threshold is ``abs_tol * max(scale, 1.0)``.
    """
    return abs(x) <= abs_tol * max(abs(scale), 1.0)
