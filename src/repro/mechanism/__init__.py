"""Algorithmic mechanism design for load balancing (companion extension).

Computers as selfish one-parameter agents, the GOS allocation as the
social choice, and Archer-Tardos payments making truth-telling dominant.
"""

from repro.mechanism.archer_tardos import (
    MechanismOutcome,
    agent_utility,
    allocate_for_bids,
    run_mechanism,
    truthful_payment,
    work_curve,
    work_curve_cutoff,
)

__all__ = [
    "MechanismOutcome",
    "agent_utility",
    "allocate_for_bids",
    "run_mechanism",
    "truthful_payment",
    "work_curve",
    "work_curve_cutoff",
]
