"""Truthful payments for load balancing (algorithmic mechanism design).

The authors' companion work ("Algorithmic Mechanism Design for Load
Balancing in Distributed Systems", Grosu & Chronopoulos, CLUSTER 2002)
flips the strategic role: the *computers* are selfish.  Each computer
``i`` privately knows its true cost per unit of work — here the
processing time ``t_i = 1/mu_i`` per job — and *bids* a claimed cost.
The mechanism allocates load by the GOS water-fill on the bid rates and
pays each computer so that bidding the truth is a dominant strategy.

The construction is the Archer-Tardos one-parameter framework:

* the work curve ``w_i(b)`` — load assigned to ``i`` when it bids ``b``
  and everyone else's bids stay fixed — is **non-increasing in the bid**
  (a slower-claiming computer gets no more work; the water-fill
  guarantees this), which is exactly the condition under which a
  truthful payment exists;
* the truthful payment is

      p_i(b) = b * w_i(b) + integral_b^infinity w_i(u) du,

  giving utility ``u_i(b) = p_i(b) - t_i * w_i(b)``; truth-telling
  maximizes it for every fixed profile of other bids, and utility at
  truth is nonnegative (voluntary participation).

The integral is finite because every computer leaves the allocation's
support at a finite bid (claim slow enough and the water-fill drops
you); :func:`work_curve_cutoff` locates that bid and Gauss-Legendre
quadrature integrates the smooth segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro.core.waterfill import sqrt_waterfill

__all__ = [
    "MechanismOutcome",
    "allocate_for_bids",
    "work_curve",
    "work_curve_cutoff",
    "truthful_payment",
    "run_mechanism",
    "agent_utility",
]


def allocate_for_bids(bids, total_demand: float) -> np.ndarray:
    """Socially optimal loads when computer ``i`` claims cost ``bids[i]``.

    Bids are processing times per job; the mechanism treats them as true
    and runs the GOS water-fill on the implied rates ``1/bid``.
    """
    bids = np.asarray(bids, dtype=float)
    if np.any(bids <= 0.0) or not np.all(np.isfinite(bids)):
        raise ValueError("bids must be positive and finite")
    if total_demand < 0.0:
        raise ValueError("demand must be nonnegative")
    rates = 1.0 / bids
    if total_demand >= rates.sum():
        raise ValueError("demand must be below the claimed total rate")
    return sqrt_waterfill(rates, total_demand).loads


def work_curve(
    index: int, bid: float, other_bids, total_demand: float
) -> float:
    """Work assigned to ``index`` when it bids ``bid`` (others fixed)."""
    bids = np.asarray(other_bids, dtype=float).copy()
    bids[index] = bid
    return float(allocate_for_bids(bids, total_demand)[index])


def work_curve_cutoff(
    index: int, other_bids, total_demand: float, *, atol: float = 1e-12
) -> float:
    """Smallest bid at which ``index`` receives (essentially) no work.

    Exists whenever the other computers alone can absorb the demand;
    otherwise the curve never reaches zero and ``inf`` is returned
    (the payment integral then diverges — the computer is a monopolist
    and no truthful bounded payment exists, which the caller rejects).
    """
    others = np.asarray(other_bids, dtype=float)
    rest = np.delete(1.0 / others, index)
    if total_demand >= rest.sum():
        return float("inf")
    lo = float(others[index])
    while work_curve(index, lo, others, total_demand) <= atol:
        lo /= 2.0  # start below any current cutoff
        if lo < 1e-12:
            break
    hi = lo
    while work_curve(index, hi, others, total_demand) > atol:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - guarded by the rest-sum check
            return float("inf")
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if work_curve(index, mid, others, total_demand) > atol:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * hi:
            break
    return hi


def truthful_payment(
    index: int, bids, total_demand: float
) -> float:
    """The Archer-Tardos payment to computer ``index`` at the given bids."""
    bids = np.asarray(bids, dtype=float)
    own_bid = float(bids[index])
    work_at_bid = work_curve(index, own_bid, bids, total_demand)
    cutoff = work_curve_cutoff(index, bids, total_demand)
    if not np.isfinite(cutoff):
        raise ValueError(
            "computer is indispensable (others cannot absorb the demand); "
            "no bounded truthful payment exists"
        )
    if cutoff <= own_bid:
        return own_bid * work_at_bid  # already out of the allocation
    tail, _err = integrate.quad(
        lambda u: work_curve(index, u, bids, total_demand),
        own_bid,
        cutoff,
        limit=200,
    )
    return own_bid * work_at_bid + float(tail)


@dataclass(frozen=True)
class MechanismOutcome:
    """One run of the truthful load allocation mechanism.

    Attributes
    ----------
    loads:
        Work (jobs/sec) assigned to each computer at the submitted bids.
    payments:
        Payment rate to each computer.
    utilities:
        ``payment - true_cost * load`` per computer (true costs supplied
        by the caller; equals the profit of each machine owner).
    overpayment_ratio:
        Total payments over the true cost of the allocated work — the
        price of eliciting the truth (the frugality question).
    """

    loads: np.ndarray
    payments: np.ndarray
    utilities: np.ndarray
    overpayment_ratio: float


def agent_utility(
    index: int, true_cost: float, bids, total_demand: float
) -> float:
    """Computer ``index``'s profit under the given bid profile."""
    bids = np.asarray(bids, dtype=float)
    payment = truthful_payment(index, bids, total_demand)
    work = work_curve(index, float(bids[index]), bids, total_demand)
    return payment - true_cost * work


def run_mechanism(
    true_costs, total_demand: float, *, bids=None
) -> MechanismOutcome:
    """Execute the mechanism (truthful bids unless overridden).

    Parameters
    ----------
    true_costs:
        ``t_i = 1/mu_i`` — each computer's private per-job processing
        time.
    total_demand:
        ``Phi`` — the job flow to be placed.
    bids:
        Claimed costs; defaults to the truth (the dominant strategy).
    """
    true_costs = np.asarray(true_costs, dtype=float)
    if bids is None:
        bids = true_costs.copy()
    bids = np.asarray(bids, dtype=float)
    if bids.shape != true_costs.shape:
        raise ValueError("bids and true costs must align")
    loads = allocate_for_bids(bids, total_demand)
    payments = np.array(
        [
            truthful_payment(i, bids, total_demand)
            for i in range(bids.size)
        ]
    )
    utilities = payments - true_costs * loads
    true_work_cost = float((true_costs * loads).sum())
    ratio = float(payments.sum() / true_work_cost) if true_work_cost > 0 else 1.0
    return MechanismOutcome(
        loads=loads,
        payments=payments,
        utilities=utilities,
        overpayment_ratio=ratio,
    )
