"""Legacy setup shim.

Kept so that ``pip install -e .`` works in offline environments whose
setuptools lacks the ``wheel`` package required by the PEP 517 editable
path (pip falls back to ``setup.py develop`` with ``--no-use-pep517``).
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
