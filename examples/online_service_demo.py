"""Online service mode — the equilibrium engine surviving a day of churn.

The paper's NASH algorithm computes one equilibrium for one static
system.  A real deployment never holds still: demand follows the clock,
users come and go, machines fail and come back.  This example runs the
online equilibrium engine through a compressed "day in production" —
a diurnal load curve with demand drift, a failure/reopen window for one
computer, and a flash crowd — re-equilibrating incrementally at every
epoch from the previous equilibrium, with every epoch certified at the
solver's standard epsilon, and SLA violations accounted against a
per-user response-time target.

It then deliberately breaks the system: every computer is failed at
once.  The engine does not crash — it surfaces the typed
CapacityExhausted error, holds the last good allocation, and recovers
by warm start the moment capacity returns.

Run:  python examples/online_service_demo.py [--trace day.trace.jsonl]
"""

from __future__ import annotations

import argparse
import contextlib

from repro import (
    ComputerFailure,
    ComputerReopen,
    EngineConfig,
    OnlineEquilibriumEngine,
    SLAPolicy,
    day_in_production_trace,
    paper_table1_system,
)
from repro.telemetry import trace_to_file, use_tracer


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="also write a telemetry trace (inspect with repro-trace engine)",
    )
    args = parser.parse_args(argv)

    with contextlib.ExitStack() as stack:
        if args.trace:
            tracer = stack.enter_context(trace_to_file(args.trace))
            stack.enter_context(use_tracer(tracer))

        system = paper_table1_system(utilization=0.5, n_users=12)
        engine = OnlineEquilibriumEngine(
            system,
            config=EngineConfig(sla=SLAPolicy(target_response_time=0.5)),
        )
        trace = day_in_production_trace(48, seed=0)
        run = engine.run(trace)

        print("a day in production (48 epochs + bootstrap)")
        print("-" * 56)
        print(f"epochs processed:        {run.n_epochs}")
        print(f"degraded-mode epochs:    {run.degraded_epochs}")
        print(f"warm-started epochs:     {run.warm_epochs}/{run.solved_epochs}")
        print(f"total best-reply sweeps: {run.total_sweeps}")
        print(f"every epoch certified:   {run.all_certified}")
        sla = run.sla
        assert sla is not None
        print(
            f"SLA (target {sla.target_response_time}s): "
            f"{sla.violations} violations, worst time {sla.worst_time:.4f}s"
        )

        # Now the pathological stretch: the whole fleet goes down at once.
        print()
        print("all-computers-down window")
        print("-" * 56)
        n = engine.state.n_computers
        down = engine.process_epoch(
            tuple(ComputerFailure(i) for i in range(n))
        )
        assert down.error is not None
        print(f"epoch status: {down.status}")
        print(f"typed error surfaced: {type(down.error).__name__}: {down.error}")
        print("engine holds the last good profile and keeps running.")

        up = engine.process_epoch(tuple(ComputerReopen(i) for i in range(n)))
        print(
            f"after reopen: status={up.status}, warm start carried the "
            f"held profile ({up.sweeps} sweeps, certified={up.certified})"
        )

    if args.trace:
        print()
        print(f"trace written to {args.trace} — try: repro-trace engine "
              f"{args.trace}")


if __name__ == "__main__":
    main()
