"""Distributed protocol demo — the NASH algorithm as message passing.

Executes the paper's Section-3 distributed algorithm over the in-process
message bus: user agents on a logical ring circulate a (sweep, norm)
token, each observing the computers' available rates and re-optimizing
its own flows with the OPTIMAL algorithm.  The demo prints the protocol
trace for the first sweeps and the transport-level accounting, and
cross-checks the outcome against the sequential solver.

Run:  python examples/distributed_protocol_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import compute_nash_equilibrium, paper_table1_system
from repro.distributed import MessageKind, run_nash_protocol


def main() -> None:
    system = paper_table1_system(utilization=0.6, n_users=5)
    print(f"ring of {system.n_users} user agents over "
          f"{system.n_computers} computers\n")

    outcome = run_nash_protocol(system, init="proportional", tolerance=1e-6)
    result = outcome.result

    # --- protocol trace (first 2 sweeps + termination) -------------------
    print("protocol trace (first two sweeps):")
    for message in outcome.transcript:
        if message.kind is MessageKind.TOKEN and message.sweep <= 2:
            print(f"  sweep {message.sweep}: user {message.sender} -> "
                  f"user {message.receiver}  (norm so far "
                  f"{message.norm:.3e})")
    terminates = [m for m in outcome.transcript
                  if m.kind is MessageKind.TERMINATE]
    print(f"  ... {result.iterations} sweeps later ...")
    for message in terminates:
        print(f"  TERMINATE: user {message.sender} -> user "
              f"{message.receiver}")

    # --- accounting --------------------------------------------------------
    print(f"\nconverged: {result.converged} after {result.iterations} "
          f"sweeps, {outcome.messages_sent} messages "
          f"({system.n_users} per sweep + {system.n_users - 1} to "
          f"terminate)")

    # --- equivalence with the sequential driver ---------------------------
    sequential = compute_nash_equilibrium(system, init="proportional",
                                          tolerance=1e-6)
    gap = float(np.abs(result.profile.fractions
                       - sequential.profile.fractions).max())
    print(f"\nsequential driver: {sequential.iterations} sweeps; "
          f"max strategy difference vs protocol: {gap:.1e}")

    print("\nequilibrium per-user times (s):",
          np.array_str(result.user_times, precision=4))


if __name__ == "__main__":
    main()
