"""Dynamic re-balancing — periodic NASH runs over a diurnal load curve.

The paper notes the NASH algorithm "is initiated periodically or when the
system parameters are changed" and lists dynamic load balancing as future
work.  This example drives that loop: the Table-1 cluster sees a diurnal
demand pattern (load swinging between 30% and 85%), and at each epoch the
users re-run the distributed algorithm.  Warm-starting each epoch from
the previous equilibrium (the natural deployment) is compared against
re-solving from scratch — the same effect that makes NASH_P beat NASH_0,
compounded over the day.

Run:  python examples/dynamic_rebalancing.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_table1_system, run_dynamic_balancing


def diurnal_snapshots(n_epochs: int = 12, n_users: int = 10):
    """One system snapshot per epoch, following a sinusoidal load curve."""
    hours = np.linspace(0.0, 2.0 * np.pi, n_epochs, endpoint=False)
    utilizations = 0.575 + 0.275 * np.sin(hours)  # 30% .. 85%
    return [
        paper_table1_system(utilization=float(rho), n_users=n_users)
        for rho in utilizations
    ], utilizations


def main() -> None:
    systems, utilizations = diurnal_snapshots()

    warm = run_dynamic_balancing(systems, warm_start=True)
    cold = run_dynamic_balancing(systems, warm_start=False,
                                 cold_init="proportional")

    print("epoch  load   sweeps(warm)  sweeps(cold)  mean time (s)")
    print("-" * 58)
    for k, (rho, w, c) in enumerate(
        zip(utilizations, warm.iterations_per_episode,
            cold.iterations_per_episode)
    ):
        mean_time = warm.user_time_trajectory[k].mean()
        print(f"{k:5d}  {rho:4.0%}  {w:12d}  {c:12d}  {mean_time:12.4f}")

    total_warm = int(warm.iterations_per_episode.sum())
    total_cold = int(cold.iterations_per_episode.sum())
    print("-" * 58)
    print(f"total sweeps over the day: warm {total_warm}, cold {total_cold} "
          f"({1 - total_warm / total_cold:.0%} saved by warm starting)")
    assert warm.all_converged and cold.all_converged

    # The equilibria themselves are identical either way — warm starting
    # only changes how fast the ring settles after each load change.
    gap = float(
        np.abs(warm.user_time_trajectory - cold.user_time_trajectory).max()
    )
    print(f"max per-user equilibrium time difference warm vs cold: {gap:.2e}")


if __name__ == "__main__":
    main()
