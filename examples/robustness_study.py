"""Robustness study — how the NASH scheme survives broken assumptions.

The paper's guarantees are proved under a clean model: exponential
services, exact knowledge of available rates, reliable coordination.
This example attacks each assumption with the reproduction's extension
substrates and reports what actually breaks:

1. **wrong service distribution** (M/G/1 reality vs the M/M/1 model);
2. **noisy rate observations** (lognormal estimation error, with and
   without smoothing);
3. **lossy coordination network** (dropped/duplicated protocol messages).

Run:  python examples/robustness_study.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_table1_system
from repro.core.uncertainty import NoisyNashSolver
from repro.distributed import run_nash_protocol, run_nash_protocol_lossy
from repro.queueing import expected_response_time_mg1
from repro.schemes import NashScheme, ProportionalScheme
from repro.simengine import from_scv, simulate_profile_fast


def attack_service_distribution(system) -> None:
    print("1. service-time misspecification "
          "(allocation optimized assuming scv = 1)")
    nash = NashScheme().allocate(system)
    ps = ProportionalScheme().allocate(system)
    print("   scv   NASH sim   PS sim    NASH still wins?")
    for scv in (0.0, 1.0, 4.0):
        dists = [from_scv(float(r), scv) for r in system.service_rates]
        nash_sim = simulate_profile_fast(
            system, nash.profile, horizon=1500.0, warmup=150.0, seed=1,
            service_distributions=dists,
        ).overall_mean_response_time()
        ps_sim = simulate_profile_fast(
            system, ps.profile, horizon=1500.0, warmup=150.0, seed=1,
            service_distributions=dists,
        ).overall_mean_response_time()
        print(f"   {scv:3.1f}  {nash_sim:9.4f}  {ps_sim:8.4f}"
              f"   {'yes' if nash_sim < ps_sim else 'NO'}")
    print("   -> absolute latency shifts with variability, the scheme "
          "ordering does not.\n")


def attack_observations(system) -> None:
    print("2. noisy available-rate estimates (lognormal sigma)")
    print("   sigma  raw regret   EMA(0.3) regret")
    for sigma in (0.05, 0.15, 0.3):
        raw = NoisyNashSolver(noise=sigma, smoothing=1.0, sweeps=30,
                              seed=4).solve(system)
        ema = NoisyNashSolver(noise=sigma, smoothing=0.3, sweeps=30,
                              seed=4).solve(system)
        print(f"   {sigma:4.2f}  {raw.mean_final_regret:10.5f}"
              f"  {ema.mean_final_regret:10.5f}")
    print("   -> the dynamics hover near the equilibrium; smoothing the "
          "estimates\n      (the paper's 'statistical estimation') shrinks "
          "the orbit several-fold.\n")


def attack_network(system) -> None:
    print("3. lossy coordination network (ring protocol)")
    clean = run_nash_protocol(system)
    print(f"   lossless: {clean.messages_sent} messages, "
          f"{clean.result.iterations} sweeps")
    for drop, dup in ((0.1, 0.0), (0.3, 0.2)):
        faulty = run_nash_protocol_lossy(
            system, drop=drop, duplicate=dup, fault_seed=7
        )
        gap = float(np.abs(
            faulty.result.user_times - clean.result.user_times
        ).max())
        print(f"   drop={drop:.0%} dup={dup:.0%}: "
              f"{faulty.messages_sent} messages "
              f"(+{faulty.messages_sent / clean.messages_sent - 1:.0%}), "
              f"equilibrium gap {gap:.1e}")
    print("   -> retransmission + dedup turn faults into pure message "
          "overhead.")


def main() -> None:
    system = paper_table1_system(utilization=0.6, n_users=6)
    print("Table-1 system, 6 users, 60% load\n")
    attack_service_distribution(system)
    attack_observations(system)
    attack_network(system)


if __name__ == "__main__":
    main()
