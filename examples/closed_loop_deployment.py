"""Closed-loop deployment — the NASH algorithm with no oracle.

Everything the analytic solvers know — service rates, other users'
flows — a deployed system must *measure*.  The paper's remark that "the
available processing rate can be determined by statistical estimation of
the run queue length of each processor" is exercised literally here:

1. the current strategy profile runs on the discrete-event simulator
   (the stand-in for the physical cluster), sampling every computer's
   run-queue length twice a second;
2. each user inverts the M/M/1 occupancy law E[N] = rho/(1-rho) to
   estimate the computers' loads, subtracts its own known flows, and
   best-responds to the *estimates*;
3. repeat.

The loop settles within a few percent of the analytic Nash equilibrium,
and the residual gap shrinks as the measurement window grows.

Run:  python examples/closed_loop_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro import compute_nash_equilibrium, paper_table1_system
from repro.simengine import run_measured_best_reply


def main() -> None:
    system = paper_table1_system(utilization=0.6, n_users=6)
    oracle = compute_nash_equilibrium(system)
    scale = float(oracle.user_times.mean())
    print(f"analytic equilibrium: mean user time {scale:.4f} s "
          f"({oracle.iterations} oracle sweeps)\n")

    print("measured closed loop (measure -> estimate -> best-respond):")
    print("window(s)  cycle regrets (s)                       relative")
    for window in (50.0, 150.0, 400.0):
        outcome = run_measured_best_reply(
            system, cycles=5, measurement_window=window, seed=42
        )
        regrets = " ".join(f"{r:.5f}" for r in outcome.regret_history)
        final = outcome.final_regret / scale
        print(f"{window:8.0f}  {regrets}  {final:7.1%}")

    print("\ninterpretation: with ~2-6 minutes of queue observations per "
          "cycle, selfish users")
    print("reach (and track) the Nash equilibrium using nothing but their "
          "own run-queue")
    print("measurements — the deployment the paper sketches in Section 2.")


if __name__ == "__main__":
    main()
