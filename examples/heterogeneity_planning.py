"""Capacity planning — how cluster heterogeneity changes scheme choice.

A planning study built on the paper's Section 4.2.3: for a fixed budget
(total processing capacity and load), how much does the load balancing
scheme matter as the cluster mixes fast and slow machines?  The study
sweeps the speed skewness of a 2-fast/14-slow cluster at 60% utilization
and reports, per scheme, the overall expected response time and the
penalty relative to the global optimum — including a simulated
confirmation of the analytic numbers at one operating point.

Run:  python examples/heterogeneity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import skewed_system, standard_schemes
from repro.simengine import replicate, simulate_profile_fast


def main() -> None:
    skews = (1.0, 2.0, 5.0, 10.0, 20.0)
    schemes = standard_schemes()

    print("overall expected response time (s) vs speed skewness "
          "(2 fast + 14 slow computers, 60% load)\n")
    header = "skew  " + "".join(f"{s.name:>10s}" for s in schemes)
    print(header)
    print("-" * len(header))
    table = {}
    for skew in skews:
        system = skewed_system(skew, utilization=0.6)
        results = {s.name: s.allocate(system) for s in schemes}
        table[skew] = results
        row = f"{skew:4.0f}  " + "".join(
            f"{results[s.name].overall_time:10.4f}" for s in schemes
        )
        print(row)

    print("\npenalty vs the global optimum (GOS = 1.00):")
    print(header)
    print("-" * len(header))
    for skew in skews:
        results = table[skew]
        gos = results["GOS"].overall_time
        row = f"{skew:4.0f}  " + "".join(
            f"{results[s.name].overall_time / gos:10.2f}" for s in schemes
        )
        print(row)

    # --- simulated confirmation at the most heterogeneous point ----------
    skew = skews[-1]
    system = skewed_system(skew, utilization=0.6)
    nash = table[skew]["NASH"]
    stats = replicate(
        lambda seed: simulate_profile_fast(
            system, nash.profile, horizon=2000.0, warmup=200.0, seed=seed
        ).user_mean_response_times,
        n_replications=5,
        seed=99,
    )
    simulated = float(
        stats.mean @ system.arrival_rates / system.total_arrival_rate
    )
    print(f"\nsimulated NASH overall time at skew {skew:.0f}: "
          f"{simulated:.4f} s "
          f"(analytic {nash.overall_time:.4f} s, "
          f"{abs(simulated - nash.overall_time) / nash.overall_time:.1%} apart; "
          f"5 replications, std err "
          f"{float(np.max(stats.relative_std_error)):.1%})")

    print("\nplanning take-aways (matching the paper's Figure 6):")
    print(" * homogeneous clusters: any sensible scheme works — even PS.")
    print(" * heterogeneous clusters: PS collapses (it overloads slow "
          "machines); IOS only recovers once the fast machines dominate.")
    print(" * NASH stays within a few percent of the global optimum while "
          "requiring no central authority.")


if __name__ == "__main__":
    main()
