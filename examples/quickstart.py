"""Quickstart — compute and inspect a Nash equilibrium allocation.

Builds a small heterogeneous distributed system shared by three selfish
users, runs the paper's NASH algorithm to the equilibrium, verifies the
equilibrium property constructively, and compares the outcome against the
classical baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistributedSystem,
    compute_nash_equilibrium,
    standard_schemes,
    verify_equilibrium,
)


def main() -> None:
    # A small cluster: one fast, one medium, two slow computers (jobs/s),
    # shared by three users with different demand.
    system = DistributedSystem(
        service_rates=[100.0, 50.0, 20.0, 20.0],
        arrival_rates=[60.0, 30.0, 10.0],
    )
    print(f"system: {system.n_computers} computers, {system.n_users} users, "
          f"utilization {system.system_utilization:.0%}")

    # --- compute the Nash equilibrium (NASH_P initialization) -----------
    result = compute_nash_equilibrium(system)
    print(f"\nNASH converged in {result.iterations} best-reply sweeps "
          f"(final norm {result.final_norm:.2e})")

    print("\nequilibrium strategy profile (rows = users, cols = computers):")
    print(np.array_str(result.profile.fractions, precision=3,
                       suppress_small=True))

    print("\nper-user expected response times (sec):")
    for name, time in zip(system.user_names, result.user_times):
        print(f"  {name}: {time:.4f}")

    # --- verify no user can unilaterally improve -------------------------
    certificate = verify_equilibrium(system, result.profile, tol=1e-5)
    print(f"\nverified: no user can improve by more than "
          f"{certificate.epsilon:.2e} sec")

    # --- compare against the paper's baselines ---------------------------
    print(f"\n{'scheme':8s} {'overall (sec)':>14s} {'fairness':>9s}")
    for scheme in standard_schemes():
        outcome = scheme.allocate(system)
        print(f"{outcome.scheme:8s} {outcome.overall_time:14.4f} "
              f"{outcome.fairness:9.4f}")


if __name__ == "__main__":
    main()
