"""Crash recovery demo — the NASH protocol surviving a dying cluster.

The distributed token-ring protocol of the paper assumes every user
process and every computer stays up.  This example drops that assumption
and walks through the recovery machinery layer by layer:

1. **agent crash + restart** — a user process dies mid-protocol (losing
   its volatile state and mailbox), the heartbeat detector suspects it,
   and on restart it is restored from a checkpoint; the ring heals by
   retransmission and still reaches the Nash equilibrium;
2. **computer failure** — a machine drops out for good; survivors
   re-project their strategies onto the live computers and converge to
   the *degraded* equilibrium, bit-comparable to a from-scratch solve on
   the surviving set;
3. **capacity exhaustion** — enough failures that the offered load no
   longer fits; instead of hanging, the run raises a typed
   ``CapacityExhausted`` with the stability diagnostics;
4. **what the failure costs** — the event-driven simulator measures
   response times through a server outage, comparing a profile that
   keeps routing to the dead machine against the degraded rebalance.

Run:  python examples/crash_recovery_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import CapacityExhausted, degraded_equilibrium, paper_table1_system
from repro.core.degradation import embed_profile, project_profile
from repro.core.strategy import StrategyProfile
from repro.distributed import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    run_nash_protocol_resilient,
)
from repro.simengine import ServerOutage, simulate_profile

TOL = 1e-8


def survive_agent_crash(system) -> None:
    print("1. agent crash and checkpoint restart (lossy network on top)")
    clean = run_nash_protocol_resilient(system, tolerance=TOL)
    schedule = FaultSchedule(
        [
            FaultEvent(12, FaultKind.AGENT_CRASH, 2),
            FaultEvent(24, FaultKind.AGENT_RESTART, 2),
        ]
    )
    chaotic = run_nash_protocol_resilient(
        system, schedule, drop=0.2, duplicate=0.1, fault_seed=5,
        tolerance=TOL,
    )
    gap = np.abs(
        chaotic.result.profile.fractions - clean.result.profile.fractions
    ).max()
    print(f"   clean run:   {clean.result.iterations} sweeps, "
          f"{clean.messages_sent} messages")
    print(f"   chaotic run: {chaotic.result.iterations} sweeps, "
          f"{chaotic.messages_sent} messages "
          f"({chaotic.retransmissions} retransmitted, "
          f"{chaotic.messages_lost_to_crash} lost to the crash)")
    print(f"   suspicions={chaotic.suspicions} "
          f"checkpoint_restores={chaotic.checkpoint_restores}")
    print(f"   profile gap to the fault-free equilibrium: {gap:.2e}")
    print("   -> the crash costs messages and sweeps, not equilibrium "
          "quality.\n")


def survive_computer_failure(system) -> None:
    print("2. permanent computer failure -> degraded equilibrium")
    schedule = FaultSchedule(
        [FaultEvent(15, FaultKind.COMPUTER_DOWN, 4)]
    )
    outcome = run_nash_protocol_resilient(system, schedule, tolerance=TOL)
    reference = degraded_equilibrium(
        system, outcome.online_mask, tolerance=TOL
    )
    gap = np.abs(
        outcome.result.profile.fractions - reference.profile.fractions
    ).max()
    online = int(np.sum(outcome.online_mask))
    print(f"   computer 4 (rate "
          f"{system.service_rates[4]:.0f} jobs/s) failed mid-run;"
          f" {online}/{system.n_computers} computers survive")
    print(f"   protocol profile vs from-scratch degraded solve: "
          f"gap = {gap:.2e}")
    print(f"   flow routed to the dead computer: "
          f"{outcome.result.profile.fractions[:, 4].max():.1e}")
    print("   -> survivors re-converge onto the live computers alone.\n")


def hit_capacity_wall(system) -> None:
    print("3. too many failures -> typed CapacityExhausted")
    schedule = FaultSchedule(
        [
            FaultEvent(8, FaultKind.COMPUTER_DOWN, 0),
            FaultEvent(12, FaultKind.COMPUTER_DOWN, 1),
            FaultEvent(16, FaultKind.COMPUTER_DOWN, 2),
        ]
    )
    try:
        run_nash_protocol_resilient(system, schedule, tolerance=TOL)
    except CapacityExhausted as exc:
        print(f"   {exc}")
        print(f"   offered={exc.total_arrival_rate:.0f} jobs/s  "
              f"surviving capacity={exc.surviving_capacity:.0f} jobs/s  "
              f"deficit={exc.deficit:.0f} jobs/s")
        print("   -> the run fails fast with diagnostics instead of "
              "looping forever.\n")
    else:
        raise SystemExit("expected CapacityExhausted")


def measure_outage_cost(system) -> None:
    print("4. simulated cost of an outage (computer 4 down 300s..700s)")
    full = degraded_equilibrium(
        system, np.ones(system.n_computers, dtype=bool), tolerance=TOL
    )
    mask = np.ones(system.n_computers, dtype=bool)
    mask[4] = False
    rebalanced = StrategyProfile(
        project_profile(full.profile.fractions, mask)
    )
    outage = [ServerOutage(4, 300.0, 700.0)]
    stubborn = simulate_profile(
        system, full.profile, horizon=1000.0, warmup=100.0, seed=11,
        outages=outage,
    )
    adapted = simulate_profile(
        system, rebalanced, horizon=1000.0, warmup=100.0, seed=11,
        outages=outage,
    )
    print(f"   keep routing to the dead machine: "
          f"{stubborn.overall_mean_response_time():.4f} s mean response")
    print(f"   degraded re-projection:           "
          f"{adapted.overall_mean_response_time():.4f} s mean response")
    print(f"   measured downtime: "
          f"{stubborn.computer_downtime[4]:.0f} s of the "
          f"{stubborn.horizon - stubborn.warmup:.0f} s window")
    print("   -> rebalancing around the outage is the difference between "
          "a blip and a pile-up.\n")


def main() -> None:
    system = paper_table1_system(utilization=0.6, n_users=6)
    print("Crash-fault tolerance for the distributed NASH protocol")
    print(f"(Table-1 system: {system.n_computers} computers, "
          f"{system.n_users} users, total load "
          f"{system.arrival_rates.sum():.0f} jobs/s)\n")
    survive_agent_crash(system)
    survive_computer_failure(system)
    hit_capacity_wall(system)
    measure_outage_cost(system)


if __name__ == "__main__":
    main()
