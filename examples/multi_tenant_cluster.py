"""Multi-tenant cluster — why tenants prefer the NASH allocation.

The paper's motivating scenario: a shared heterogeneous cluster where no
central authority can impose an allocation, because tenants (users) are
free to re-route their own jobs.  This example plays out that story on
the paper's Table-1 system:

1. the operator imposes the *globally optimal* (GOS) allocation — best
   aggregate performance, but some tenants are sacrificed;
2. sacrificed tenants defect: each computes its selfish best response,
   which unravels GOS;
3. the system settles at the Nash equilibrium, where every tenant gets
   the best time it can unilaterally achieve — slightly worse on average
   than GOS, but stable and fair.

Run:  python examples/multi_tenant_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    best_response,
    best_response_regrets,
    compute_nash_equilibrium,
    paper_table1_system,
)
from repro.schemes import GlobalOptimalScheme


def main() -> None:
    system = paper_table1_system(utilization=0.6, n_users=10)
    print("Table-1 cluster: 16 computers (510 jobs/s aggregate), "
          "10 equal tenants, 60% load\n")

    # --- step 1: the operator imposes GOS --------------------------------
    gos = GlobalOptimalScheme().allocate(system)
    print("imposed GOS allocation (sequential split, as a central NLP "
          "solver would produce):")
    print(f"  overall time  : {gos.overall_time:.4f} s")
    print(f"  fairness index: {gos.fairness:.3f}")
    print(f"  best tenant   : {gos.user_times.min():.4f} s")
    print(f"  worst tenant  : {gos.user_times.max():.4f} s "
          f"({gos.user_times.max() / gos.user_times.min():.1f}x worse)")

    # --- step 2: sacrificed tenants defect --------------------------------
    cert = best_response_regrets(system, gos.profile)
    defectors = np.flatnonzero(cert.regrets > 1e-6)
    print(f"\ntenants with an incentive to defect from GOS: "
          f"{len(defectors)} of {system.n_users}")
    worst = int(np.argmax(cert.regrets))
    reply = best_response(system, gos.profile, worst)
    print(f"  tenant {worst} can cut its time from "
          f"{cert.user_times[worst]:.4f} s to "
          f"{reply.expected_response_time:.4f} s by re-routing alone "
          f"(-{cert.regrets[worst] / cert.user_times[worst]:.0%})")

    # --- step 3: defection cascades to the Nash equilibrium ---------------
    nash = compute_nash_equilibrium(system, init=gos.profile)
    print(f"\nafter all tenants iterate best responses "
          f"({nash.iterations} sweeps): Nash equilibrium")
    print(f"  overall time  : "
          f"{system.overall_response_time(nash.profile.fractions):.4f} s "
          f"(vs GOS {gos.overall_time:.4f})")
    print(f"  tenant times  : min {nash.user_times.min():.4f}, "
          f"max {nash.user_times.max():.4f}  (all equal — fair)")
    post = best_response_regrets(system, nash.profile)
    print(f"  stability     : max remaining incentive to defect "
          f"{post.epsilon:.2e} s")

    print("\nconclusion: GOS is unstable under tenant autonomy; NASH is the "
          "allocation the cluster actually converges to, at "
          f"{(system.overall_response_time(nash.profile.fractions) / gos.overall_time - 1.0):.1%} "
          "aggregate cost.")


if __name__ == "__main__":
    main()
