"""ABL2 — GOS per-user split policies (fairness is a free choice)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import extensions


def test_bench_gos_split_ablation(benchmark, show):
    artifact = benchmark(extensions.run_gos_split_ablation)
    show(artifact)
    times = artifact.column("overall_time")
    np.testing.assert_allclose(times, times[0], rtol=1e-4)
    by_split = {row["split"]: row for row in artifact.rows}
    assert by_split["fair"]["fairness"] == pytest.approx(1.0)
    assert by_split["sequential"]["fairness"] < 0.95
    assert (
        by_split["sequential"]["worst_user_time"]
        > by_split["fair"]["worst_user_time"]
    )
