"""F2 — regenerate Figure 2 (norm vs iterations, NASH_0 vs NASH_P).

Paper claims reproduced here:
* both initializations converge on the Table-1 system (16 computers,
  10 users);
* NASH_P starts closer to the equilibrium and reaches any tolerance in
  no more iterations than NASH_0.
"""

from __future__ import annotations

from repro.experiments import fig2_convergence


def test_bench_fig2_norm_trajectories(benchmark, show):
    artifact = benchmark(fig2_convergence.run)
    show(artifact)
    n0 = [v for v in artifact.column("norm_nash_0") if v is not None]
    np_ = [v for v in artifact.column("norm_nash_p") if v is not None]
    # Both traces converge below the tight tolerance.
    assert n0[-1] <= 1e-8 and np_[-1] <= 1e-8
    # NASH_P is never slower and starts closer.
    assert len(np_) <= len(n0)
    assert np_[0] < n0[0]
