"""SHM-PLANE — the zero-copy data plane versus per-task pickling.

The plane (:mod:`repro.experiments.shm`) publishes the coordinator's
big read-only arrays into ``multiprocessing.shared_memory`` once and
ships workers picklable :class:`~repro.experiments.shm.ArrayRef`
handles instead of array bytes.  This group measures it both ways:

* ``test_bench_plane_sharded_m1e6_pickled`` /
  ``..._shmplane`` — the headline pair: one fixed-budget block-Jacobi
  round of the sharded class-space NASH solve at ``m = 1_000_000``
  users (256 classes) over ``n = 1024`` computers, dispatched over the
  process pool with the class matrices pickled per shard versus
  published once to the plane.
* ``test_bench_plane_fanout_pickled`` / ``..._shmplane`` — a
  scheme-evaluation sweep fanned out point-per-task with the per-point
  rate vectors pickled versus shared.  The proportional scheme keeps
  the per-point compute in microseconds, so the pair isolates dispatch
  cost — exactly what the plane removes.
* ``test_bench_plane_coordinator_bytes`` — the deterministic gate
  metric: the coordinator-side serialization bytes of the sharded
  round, measured by pickling every task payload on both paths.  The
  recorded ``shm_plane_bytes_reduction`` ratio is gated in CI at
  >= 2x via ``benchmarks/bench_gate.py --min-shm-speedup`` (measured
  ~100x; bytes are machine-independent, so the floor is exact where
  wall-clock speedups on shared CI machines are noisy).  The same
  measurement pins bit-identity of the two paths at headline scale.

See the "Zero-copy data plane" section of docs/PERFORMANCE.md.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import sharding
from repro.core.classes import aggregate_users
from repro.core.model import DistributedSystem
from repro.core.sharding import solve_sharded
from repro.experiments.common import run_schemes_sweep
from repro.experiments.shm import clear_worker_cache, shm_available
from repro.schemes.proportional import ProportionalScheme
from repro.workloads.sweeps import sweep_points

shm_plane = pytest.mark.benchmark(group="shm-plane")

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no POSIX shared memory on this platform"
)

#: Headline sharded geometry (matches the class-scale million bench).
USERS = 1_000_000
COMPUTERS = 1024
CLASSES = 256
SHARDS = 4
#: Fixed budget, identical on both payload paths: the pair measures
#: dispatch cost, not convergence luck.
SHARD_SWEEPS = 4

#: Fan-out sweep geometry: 32768 users puts the per-point arrival-rate
#: vector (256 KiB) well above the plane's 32 KiB sharing threshold.
SWEEP_USERS = 32_768
SWEEP_RHOS = (0.4, 0.5, 0.6, 0.7)


def _million_user_system(seed: int = 42) -> DistributedSystem:
    rng = np.random.default_rng(seed)
    mu = rng.uniform(50.0, 150.0, size=COMPUTERS)
    rates = rng.uniform(0.5, 2.0, size=CLASSES)
    phi = rates[np.arange(USERS) % CLASSES]
    phi = phi * (0.6 * mu.sum() / phi.sum())
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


@pytest.fixture(scope="module")
def million_aggregation():
    return aggregate_users(_million_user_system())


def _solve_one_round(aggregation, *, use_shm: bool):
    return solve_sharded(
        aggregation,
        n_shards=SHARDS,
        tolerance=1e-12,
        max_rounds=1,
        shard_max_sweeps=SHARD_SWEEPS,
        reconcile_sweeps=1,
        n_workers=2,
        use_shm=use_shm,
    )


@shm_plane
def test_bench_plane_sharded_m1e6_pickled(benchmark, million_aggregation):
    result = benchmark.pedantic(
        lambda: _solve_one_round(million_aggregation, use_shm=False),
        rounds=3,
        iterations=1,
    )
    assert result.rounds == 1  # budget exhausted, not converged


@shm_plane
def test_bench_plane_sharded_m1e6_shmplane(benchmark, million_aggregation):
    result = benchmark.pedantic(
        lambda: _solve_one_round(million_aggregation, use_shm=True),
        rounds=3,
        iterations=1,
    )
    assert result.rounds == 1


def _sweep_once(points, *, use_shm: bool):
    return run_schemes_sweep(
        points, [ProportionalScheme()], n_workers=2, use_shm=use_shm
    )


@pytest.fixture(scope="module")
def sweep_point_list():
    return sweep_points("utilization", SWEEP_RHOS, n_users=SWEEP_USERS)


@shm_plane
def test_bench_plane_fanout_pickled(benchmark, sweep_point_list):
    results = benchmark.pedantic(
        lambda: _sweep_once(sweep_point_list, use_shm=False),
        rounds=3,
        iterations=1,
    )
    assert len(results) == len(SWEEP_RHOS)


@shm_plane
def test_bench_plane_fanout_shmplane(benchmark, sweep_point_list):
    results = benchmark.pedantic(
        lambda: _sweep_once(sweep_point_list, use_shm=True),
        rounds=3,
        iterations=1,
    )
    assert len(results) == len(SWEEP_RHOS)


class _MeteredMap:
    """In-process ``parallel_map`` stand-in that weighs every payload.

    Running the worker callables inline keeps the measurement exact and
    machine-independent: the bytes a payload pickles to are what the
    real pool would push through the task pipe per dispatch.
    """

    def __init__(self):
        self.bytes_sent = 0

    def __call__(self, fn, items, **kwargs):
        items = list(items)
        self.bytes_sent += sum(
            len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
            for item in items
        )
        return [fn(item) for item in items]


@shm_plane
def test_bench_plane_coordinator_bytes(
    benchmark, million_aggregation, monkeypatch, record_speedup
):
    def measure():
        meters = {}
        results = {}
        for label, use_shm in (("pickled", False), ("shmplane", True)):
            meter = _MeteredMap()
            monkeypatch.setattr(sharding, "parallel_map", meter)
            try:
                results[label] = _solve_one_round(
                    million_aggregation, use_shm=use_shm
                )
            finally:
                monkeypatch.undo()
                clear_worker_cache()
            meters[label] = meter.bytes_sent
        return meters, results

    meters, results = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Both dispatch paths produce the same equilibrium iterate, bit for
    # bit, at headline scale.
    np.testing.assert_array_equal(
        results["pickled"].class_fractions,
        results["shmplane"].class_fractions,
    )
    reduction = meters["pickled"] / meters["shmplane"]
    record_speedup("shm_plane_bytes_reduction", reduction)
    assert reduction >= 2.0
