"""SIM-FASTPATH — replication batching and warm-start continuation.

Every benchmark in this module is in group ``sim-fastpath``; the session
plugin in ``conftest.py`` serializes their timings — plus the speedups
of the ``_looped``/``_batched`` and ``_cold``/``_warm`` pairs — into
``BENCH_nash.json`` alongside the nash-core group, and CI gates the
recorded speedups with ``benchmarks/bench_gate.py`` (batched
replications >= 4x, warm sweeps >= 2x; see docs/PERFORMANCE.md).

The replication pair runs R=16 replications of the Table-1 n=16 system
in the overhead-bound regime (short horizon, ~800 jobs per run) where
batching pays: the ``_looped`` side calls the one-run fast path once
per seed, the ``_batched`` side hands every seed to
``simulate_profile_fast_batch`` at once.  Both sides consume identical
randomness and produce bit-identical results (pinned in
tests/simengine/test_fastpath_batch.py), so the ratio measures pure
per-run overhead savings, not statistical luck.

The sweep pair solves the dense Figure-4 utilization grid cold versus
with ``continuation=True`` — warm-starting every NASH solve from the
previous point's equilibrium while certifying the same epsilon
(tests/core/test_continuation.py pins the certificates).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.nash import compute_nash_equilibrium
from repro.experiments.common import run_schemes_sweep
from repro.schemes import NashScheme
from repro.simengine.fastpath import (
    simulate_profile_fast,
    simulate_profile_fast_batch,
)
from repro.simengine.rng import replication_seeds
from repro.workloads import paper_table1_system
from repro.workloads.sweeps import utilization_sweep

sim_fastpath = pytest.mark.benchmark(group="sim-fastpath")

#: Replication-study shape: R=16 runs of the n=16 Table-1 system on a
#: short horizon, where per-run overhead (not job volume) dominates.
REPLICATIONS = 16
HORIZON = 3.0
WARMUP = 0.3

#: Dense Figure-4 grid for the cold/warm sweep pair.
SWEEP_GRID = tuple(np.linspace(0.1, 0.9, 33))


@pytest.fixture(scope="module")
def replication_setup():
    system = paper_table1_system(utilization=0.6, n_users=16)
    profile = compute_nash_equilibrium(system).profile
    seeds = replication_seeds(42, REPLICATIONS)
    return system, profile, seeds


# ----------------------------------------------------------------------
# Looped vs batched replications (identical seeds, identical results)
# ----------------------------------------------------------------------
@sim_fastpath
def test_bench_replications_r16_looped(benchmark, replication_setup):
    system, profile, seeds = replication_setup
    results = benchmark(
        lambda: [
            simulate_profile_fast(
                system, profile, horizon=HORIZON, warmup=WARMUP, seed=seed
            )
            for seed in seeds
        ]
    )
    assert len(results) == REPLICATIONS


@sim_fastpath
def test_bench_replications_r16_batched(benchmark, replication_setup):
    system, profile, seeds = replication_setup
    results = benchmark(
        lambda: simulate_profile_fast_batch(
            system, profile, horizon=HORIZON, warmup=WARMUP, seeds=seeds
        )
    )
    assert len(results) == REPLICATIONS


# ----------------------------------------------------------------------
# Cold vs warm-started Figure-4 sweep (same certified equilibria)
# ----------------------------------------------------------------------
@sim_fastpath
def test_bench_fig4_sweep_cold(benchmark):
    points = list(utilization_sweep(SWEEP_GRID))
    sweep = benchmark.pedantic(
        lambda: run_schemes_sweep(points, (NashScheme(),)),
        rounds=3,
        iterations=1,
    )
    assert len(sweep) == len(points)


@sim_fastpath
def test_bench_fig4_sweep_warm(benchmark):
    points = list(utilization_sweep(SWEEP_GRID))
    sweep = benchmark.pedantic(
        lambda: run_schemes_sweep(
            points, (NashScheme(),), continuation=True
        ),
        rounds=3,
        iterations=1,
    )
    assert len(sweep) == len(points)
    warmed = [r["NASH"].extra["warm_started"] for _, r in sweep]
    assert warmed.count(True) >= len(points) - 1
