"""Perf-regression gate over ``BENCH_nash.json`` snapshots.

Compares a freshly generated benchmark JSON (written by the session
plugin in ``benchmarks/conftest.py``) against the committed baseline and
fails when

* any shared benchmark regressed by more than ``--max-ratio``
  (default 2x — generous because CI machines are noisy; the trajectory,
  not single-digit percents, is what the gate protects);
* any recorded speedup pair fell below its floor:
  ``--min-speedup`` (default 10x) for the m=1000, n=64 simultaneous
  NASH solve, ``--min-batch-speedup`` (default 4x) for batched versus
  looped replications, ``--min-warm-speedup`` (default 2x) for the
  warm-started versus cold Figure-4 sweep, ``--min-churn-speedup``
  (default 2x) for the online engine's incremental re-equilibration
  versus cold re-solves over the churn trace,
  ``--min-class-speedup`` (default 5x) for the class-space versus
  per-user fixed-budget NASH solve at m=100k users,
  ``--min-sample-msg-reduction`` (default 10x) for the sampled
  (power-of-k) ring protocol's per-sweep message reduction against the
  full-information baseline, and ``--min-shm-speedup`` (default 2x)
  for the zero-copy data plane's coordinator-serialization-bytes
  reduction on the sharded m=1e6 solve (a deterministic byte ratio,
  not a timing — exact on any machine).

Usage::

    python benchmarks/bench_gate.py \
        --baseline BENCH_nash.json --fresh /tmp/BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _load(path: pathlib.Path) -> dict:
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"bench-gate: missing benchmark file {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"bench-gate: invalid JSON in {path}: {exc}")
    if "benchmarks" not in payload:
        raise SystemExit(f"bench-gate: {path} has no 'benchmarks' key")
    return payload


def compare(
    baseline: dict,
    fresh: dict,
    *,
    max_ratio: float,
    min_speedup: float,
    min_batch_speedup: float = 4.0,
    min_warm_speedup: float = 2.0,
    min_churn_speedup: float = 2.0,
    min_class_speedup: float = 5.0,
    min_sample_msg_reduction: float = 10.0,
    min_shm_speedup: float = 2.0,
) -> list[str]:
    """Return a list of human-readable gate violations (empty = pass)."""
    failures = []
    base_means = {b["name"]: b["mean"] for b in baseline["benchmarks"]}
    fresh_means = {b["name"]: b["mean"] for b in fresh["benchmarks"]}
    for name in sorted(set(base_means) & set(fresh_means)):
        ratio = fresh_means[name] / base_means[name]
        if ratio > max_ratio:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"({fresh_means[name]:.6g}s vs {base_means[name]:.6g}s, "
                f"limit {max_ratio:g}x)"
            )
    floors = (
        ("simultaneous", min_speedup),
        ("replications", min_batch_speedup),
        ("churn", min_churn_speedup),
        ("class", min_class_speedup),
        ("sweep", min_warm_speedup),
        ("sample", min_sample_msg_reduction),
        ("shm", min_shm_speedup),
    )
    for key, speedup in sorted(fresh.get("speedups", {}).items()):
        for token, floor in floors:
            if token in key and speedup < floor:
                failures.append(
                    f"{key}: recorded speedup {speedup:.2f}x fell below "
                    f"the {floor:g}x floor"
                )
                break
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline", type=pathlib.Path, required=True,
        help="committed BENCH_nash.json to compare against",
    )
    parser.add_argument(
        "--fresh", type=pathlib.Path, required=True,
        help="freshly generated BENCH_nash.json",
    )
    parser.add_argument("--max-ratio", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=10.0)
    parser.add_argument("--min-batch-speedup", type=float, default=4.0)
    parser.add_argument("--min-warm-speedup", type=float, default=2.0)
    parser.add_argument("--min-churn-speedup", type=float, default=2.0)
    parser.add_argument("--min-class-speedup", type=float, default=5.0)
    parser.add_argument(
        "--min-sample-msg-reduction", type=float, default=10.0
    )
    parser.add_argument("--min-shm-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    failures = compare(
        baseline, fresh,
        max_ratio=args.max_ratio, min_speedup=args.min_speedup,
        min_batch_speedup=args.min_batch_speedup,
        min_warm_speedup=args.min_warm_speedup,
        min_churn_speedup=args.min_churn_speedup,
        min_class_speedup=args.min_class_speedup,
        min_sample_msg_reduction=args.min_sample_msg_reduction,
        min_shm_speedup=args.min_shm_speedup,
    )
    if failures:
        print("bench-gate: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    shared = {b["name"] for b in baseline["benchmarks"]} & {
        b["name"] for b in fresh["benchmarks"]
    }
    print(
        f"bench-gate: OK ({len(shared)} benchmarks within {args.max_ratio:g}x, "
        f"speedups {fresh.get('speedups', {})})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
