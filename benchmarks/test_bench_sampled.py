"""SAMPLED-NASH — power-of-k sampled replies vs full information.

Two measurements, one group:

* ``test_bench_knash_fullinfo`` / ``test_bench_knash_sampled`` — the
  same fixed-budget class-space solve (zero init, identical order and
  seed) with exact full-information replies versus ``sample_k=2``
  power-of-k replies.  The recorded ``test_bench_knash`` ratio is the
  wall-clock side of sampling; the poll counts asserted below are the
  information side (``k`` probes per class per sweep instead of ``n``).
* ``test_bench_sampled_msg_reduction`` — the ring protocol's per-sweep
  message cost (token hops + availability polls) at ``k=2`` versus the
  same driver at ``k=n``, recorded as the ``sampled_msg_reduction``
  ratio CI gates at >= 10x via ``bench_gate.py
  --min-sample-msg-reduction`` (measured ~20x; see
  docs/PERFORMANCE.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import ClassNashSolver, aggregate_users
from repro.core.model import DistributedSystem
from repro.distributed.sampled import run_sampled_nash_protocol

sampled_nash = pytest.mark.benchmark(group="sampled-nash")

#: Class-space solve shape: large enough that one sweep observes 128k
#: computer states under full information, small enough for CI.
N_COMPUTERS = 4_000
N_CLASSES = 32
USERS_PER_CLASS = 250
MAX_SWEEPS = 60
SAMPLE_K = 2

#: Ring-protocol shape for the message-economics measurement.
PROTOCOL_COMPUTERS = 64
PROTOCOL_USERS = 24


def _aggregation():
    rng = np.random.default_rng(11)
    mu = np.exp(rng.uniform(np.log(10.0), np.log(100.0), size=N_COMPUTERS))
    total = 0.6 * mu.sum()
    shares = rng.dirichlet(np.full(N_CLASSES, 4.0))
    class_rates = np.maximum(shares, 0.1 / N_CLASSES) * total
    class_rates *= total / (class_rates.sum() * USERS_PER_CLASS)
    system = DistributedSystem(
        service_rates=mu,
        arrival_rates=np.repeat(class_rates, USERS_PER_CLASS),
    )
    return aggregate_users(system)


def _solve(aggregation, sample_k: int):
    solver = ClassNashSolver(
        tolerance=1e-12,
        max_sweeps=MAX_SWEEPS,
        order="random",
        seed=11,
        sample_k=sample_k,
    )
    return solver.solve(aggregation, init="zero")


@sampled_nash
def test_bench_knash_fullinfo(benchmark):
    aggregation = _aggregation()
    result = benchmark.pedantic(
        lambda: _solve(aggregation, N_COMPUTERS), rounds=3, iterations=1
    )
    assert result.iterations == MAX_SWEEPS
    certificate = result.sample
    assert certificate is not None and certificate.full_information
    assert certificate.polls == MAX_SWEEPS * N_CLASSES * N_COMPUTERS


@sampled_nash
def test_bench_knash_sampled(benchmark):
    aggregation = _aggregation()
    result = benchmark.pedantic(
        lambda: _solve(aggregation, SAMPLE_K), rounds=3, iterations=1
    )
    assert result.iterations == MAX_SWEEPS
    certificate = result.sample
    assert certificate is not None and not certificate.full_information
    # The information economics: orders of magnitude fewer observations
    # than the m·n-per-sweep full-information budget.
    assert certificate.polls * 10 < MAX_SWEEPS * N_CLASSES * N_COMPUTERS


@sampled_nash
def test_bench_sampled_msg_reduction(benchmark, record_speedup):
    rng = np.random.default_rng(12)
    mu = np.exp(
        rng.uniform(np.log(10.0), np.log(100.0), size=PROTOCOL_COMPUTERS)
    )
    system = DistributedSystem(
        service_rates=mu,
        arrival_rates=np.full(
            PROTOCOL_USERS, 0.6 * mu.sum() / PROTOCOL_USERS
        ),
    )

    def run_pair():
        sampled = run_sampled_nash_protocol(system, sample_k=SAMPLE_K, seed=12)
        baseline = run_sampled_nash_protocol(
            system, sample_k=PROTOCOL_COMPUTERS, seed=12
        )
        return sampled, baseline

    sampled, baseline = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert sampled.result.converged and baseline.result.converged
    per_sweep = sampled.messages_sent / sampled.result.iterations
    baseline_per_sweep = baseline.messages_sent / baseline.result.iterations
    reduction = baseline_per_sweep / per_sweep
    record_speedup("sampled_msg_reduction", reduction)
    assert reduction >= 10.0
