"""ENGINE-CHURN — incremental re-equilibration vs cold re-solves.

The online engine's value proposition, measured: the same 40-epoch
day-in-production churn trace (diurnal demand, phi drift, a failure/
reopen window, a flash crowd) is re-equilibrated epoch by epoch either

* ``_cold`` — legacy service mode: every epoch re-solves from the
  proportional profile to full sweep-norm convergence
  (``warm_mode='off'``, no certificate early stop), or
* ``_warm`` — engine mode: every epoch warm-starts from the previous
  equilibrium (with failure/reopen column remapping) and stops as soon
  as an ``best_response_regrets`` certificate meets the same epsilon
  (``certify_every=8``).

Both sides certify every epoch at the solver's standard 1e-6 epsilon —
tests/engine/test_service.py pins the certificate parity — so the
recorded ``_cold``/``_warm`` speedup measures pure incremental savings,
not accuracy traded away.  CI gates the ratio at >= 2x via
``benchmarks/bench_gate.py --min-churn-speedup`` (measured ~5x; see
docs/PERFORMANCE.md).
"""

from __future__ import annotations

import pytest

from repro.engine import EngineConfig, OnlineEquilibriumEngine
from repro.workloads import day_in_production_trace, paper_table1_system

engine_churn = pytest.mark.benchmark(group="engine-churn")

#: Trace shape: ~half a diurnal period over 40 epochs in the 0.55-0.9
#: utilization band — adjacent epochs are similar (where warm starts
#: pay) but never identical (drift keeps every epoch a real re-solve).
N_EPOCHS = 40
TRACE_KWARGS = dict(
    period=96, low=0.55, high=0.9, drift_volatility=0.01, seed=7
)
N_USERS = 16


def _run(config: EngineConfig):
    system = paper_table1_system(utilization=0.5, n_users=N_USERS)
    trace = day_in_production_trace(N_EPOCHS, **TRACE_KWARGS)
    engine = OnlineEquilibriumEngine(system, config=config)
    return engine.run(trace)


@engine_churn
def test_bench_engine_churn_cold(benchmark):
    run = benchmark.pedantic(
        lambda: _run(EngineConfig(warm_mode="off", certify_every=None)),
        rounds=3,
        iterations=1,
    )
    assert run.n_epochs == N_EPOCHS + 1
    assert run.all_certified


@engine_churn
def test_bench_engine_churn_warm(benchmark):
    run = benchmark.pedantic(
        lambda: _run(EngineConfig(warm_mode="repair", certify_every=8)),
        rounds=3,
        iterations=1,
    )
    assert run.n_epochs == N_EPOCHS + 1
    assert run.all_certified
    # Every epoch after the cold bootstrap is warm-started.
    assert run.warm_epochs == N_EPOCHS
