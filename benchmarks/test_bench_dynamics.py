"""EXT2/EXT3, ABL3/ABL4 — dynamics extensions and ablations, benchmarked."""

from __future__ import annotations

import pytest

from repro.experiments import ext_dynamics


def test_bench_dynamic_policies(benchmark, show):
    artifact = benchmark(
        lambda: ext_dynamics.run_dynamic_policies(horizon=300.0, warmup=30.0)
    )
    show(artifact)
    by_name = {
        row["policy"]: row["mean_response_time"] for row in artifact.rows
    }
    # Static ordering reproduces the paper; dynamic information helps more.
    assert by_name["NASH (static)"] < by_name["PS (static)"]
    assert by_name["JSQ (dynamic)"] < by_name["NASH (static)"]


def test_bench_update_order_ablation(benchmark, show):
    artifact = benchmark(ext_dynamics.run_update_order_ablation)
    show(artifact)
    by_order = {row["order"]: row for row in artifact.rows}
    assert by_order["roundrobin"]["converged"]
    assert by_order["random"]["converged"]
    assert not by_order["simultaneous"]["converged"]


def test_bench_noise_ablation(benchmark, show):
    artifact = benchmark(ext_dynamics.run_noise_ablation)
    show(artifact)
    raw = artifact.column("final_regret_raw")
    smoothed = artifact.column("final_regret_smoothed")
    assert raw == sorted(raw)  # regret grows with noise
    assert smoothed[-1] < raw[-1]  # smoothing shrinks the plateau


def test_bench_cooperative(benchmark, show):
    artifact = benchmark(ext_dynamics.run_cooperative)
    show(artifact)
    by_scheme = {row["scheme"]: row for row in artifact.rows}
    assert by_scheme["NBS"]["fairness"] == pytest.approx(1.0, abs=1e-6)
    assert (
        by_scheme["GOS"]["overall_time"] - 1e-9
        <= by_scheme["NBS"]["overall_time"]
        <= by_scheme["NASH"]["overall_time"] + 1e-9
    )
