"""F5 — regenerate Figure 5 (per-user expected response time at 60% load).

Paper claims reproduced here:
* PS and IOS give every user identical (higher) times;
* GOS exhibits large per-user disparities;
* NASH gives each user its unilaterally minimal time, nearly identical
  across the (symmetric) users and below IOS/PS for all of them.
"""

from __future__ import annotations

from repro.experiments import fig5_per_user


def test_bench_fig5_per_user_times(benchmark, show):
    artifact = benchmark(fig5_per_user.run)
    show(artifact)
    ps = artifact.column("ert_ps")
    ios = artifact.column("ert_ios")
    gos = artifact.column("ert_gos")
    nash = artifact.column("ert_nash")

    assert max(ps) - min(ps) < 1e-9
    assert max(ios) - min(ios) < 1e-9
    assert max(gos) > 1.5 * min(gos)
    assert max(nash) - min(nash) < 1e-4 * min(nash)
    for row in artifact.rows:
        assert row["ert_nash"] <= row["ert_ios"] + 1e-9
        assert row["ert_nash"] <= row["ert_ps"] + 1e-9
