"""EXT1 — price of anarchy and Stackelberg leader-share sweeps."""

from __future__ import annotations

from repro.experiments import extensions


def test_bench_price_of_anarchy(benchmark, show):
    artifact = benchmark(extensions.run_price_of_anarchy)
    show(artifact)
    poas = artifact.column("price_of_anarchy")
    assert all(p >= 1.0 - 1e-9 for p in poas)
    # Selfish play costs little on the paper's configurations.
    assert max(poas) < 1.3


def test_bench_stackelberg_sweep(benchmark, show):
    artifact = benchmark(extensions.run_stackelberg)
    show(artifact)
    times = artifact.column("ert_stackelberg")
    # More centrally controlled flow never hurts.
    for earlier, later in zip(times, times[1:]):
        assert later <= earlier + 1e-9
    # beta = 1 recovers the global optimum.
    assert artifact.rows[-1]["vs_gos"] < 1.0 + 1e-6
