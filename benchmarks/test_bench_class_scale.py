"""CLASS-SCALE — million-user solves in user-class space.

The class aggregation's value proposition, measured two ways:

* ``test_bench_class_scale_million`` — the headline: aggregate
  ``m = 1_000_000`` users (256 distinct job rates) over ``n = 1024``
  computers and solve to the standard certificate in ``(c, n)`` state.
  The per-user path cannot even allocate this instance's profile
  history on a laptop; the class path finishes in well under a second.
* ``..._m1e5_peruser`` / ``..._m1e5_classspace`` — an apples-to-apples
  speedup pair at ``m = 100_000``: both sides run the *same* fixed
  budget of round-robin best-reply sweeps on the same system, one per
  user and one per class.  The recorded ``class_scale_m1e5`` speedup is
  gated in CI at >= 5x via ``benchmarks/bench_gate.py
  --min-class-speedup`` (measured orders of magnitude higher; the floor
  is deliberately loose for noisy CI machines).

See docs/PERFORMANCE.md for the scaling discussion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classes import (
    ClassNashSolver,
    aggregate_users,
    class_best_response_regrets,
)
from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver

class_scale = pytest.mark.benchmark(group="class-scale")

#: Fixed sweep budget for the m=1e5 speedup pair — identical on both
#: sides, so the ratio measures per-sweep cost, not convergence luck.
SMOKE_SWEEPS = 4
SMOKE_USERS = 100_000
SMOKE_COMPUTERS = 128
SMOKE_CLASSES = 100

MILLION_USERS = 1_000_000
MILLION_COMPUTERS = 1024
MILLION_CLASSES = 256


def _class_structured_system(
    n_users: int, n_computers: int, n_classes: int, *, seed: int = 42
) -> DistributedSystem:
    """``n_users`` users drawn from ``n_classes`` distinct job rates."""
    rng = np.random.default_rng(seed)
    mu = rng.uniform(50.0, 150.0, size=n_computers)
    rates = rng.uniform(0.5, 2.0, size=n_classes)
    phi = rates[np.arange(n_users) % n_classes]
    phi = phi * (0.6 * mu.sum() / phi.sum())
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


@class_scale
def test_bench_class_scale_million(benchmark):
    system = _class_structured_system(
        MILLION_USERS, MILLION_COMPUTERS, MILLION_CLASSES
    )

    def solve():
        aggregation = aggregate_users(system)
        result = ClassNashSolver().solve(aggregation, "proportional")
        return aggregation, result

    aggregation, result = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert aggregation.n_classes == MILLION_CLASSES
    assert aggregation.n_users == MILLION_USERS
    assert result.converged
    certificate = class_best_response_regrets(
        aggregation, result.class_fractions
    )
    assert certificate.epsilon <= 1e-6


@class_scale
def test_bench_class_scale_m1e5_peruser(benchmark):
    system = _class_structured_system(
        SMOKE_USERS, SMOKE_COMPUTERS, SMOKE_CLASSES
    )
    solver = NashSolver(max_sweeps=SMOKE_SWEEPS, tolerance=1e-12)
    result = benchmark.pedantic(
        lambda: solver.solve(system, "proportional"), rounds=3, iterations=1
    )
    # Fixed budget: the run exhausts its sweeps rather than converging.
    assert result.iterations == SMOKE_SWEEPS


@class_scale
def test_bench_class_scale_m1e5_classspace(benchmark):
    system = _class_structured_system(
        SMOKE_USERS, SMOKE_COMPUTERS, SMOKE_CLASSES
    )
    aggregation = aggregate_users(system)
    assert aggregation.n_classes == SMOKE_CLASSES
    solver = ClassNashSolver(max_sweeps=SMOKE_SWEEPS, tolerance=1e-12)
    result = benchmark.pedantic(
        lambda: solver.solve(aggregation, "proportional"),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == SMOKE_SWEEPS
