"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper artifact (table/figure) end to end,
times the regeneration with pytest-benchmark, asserts the paper's
qualitative claims about it, and prints the reproduced rows (add ``-s``
to see them inline).

After a benchmark session this plugin serializes the gated timings
(group ``nash-core``: the NASH solver, OPTIMAL, the batched water-fill
kernel, the Lindley fastpath; group ``sim-fastpath``: batched
replications and warm-started sweeps; group ``engine-churn``: the
online engine's incremental re-equilibration versus cold re-solves
over a churn trace; group ``class-scale``: million-user solves in
user-class space and the fixed-budget per-user versus class-space
pair; group ``sampled-nash``: power-of-k sampled versus
full-information class solves and the sampled ring's message
reduction; group ``shm-plane``: the zero-copy shared-memory data
plane versus per-task pickling, including the deterministic
coordinator-serialization-bytes reduction) into ``BENCH_nash.json`` at the
repo root — the perf-regression trajectory CI gates on (see
``benchmarks/bench_gate.py`` and docs/PERFORMANCE.md).  Baseline/
optimized benchmark pairs — names differing only in a
``_legacy``/``_vectorized``, ``_looped``/``_batched``,
``_cold``/``_warm``, ``_peruser``/``_classspace``,
``_fullinfo``/``_sampled`` or ``_pickled``/``_shmplane`` suffix —
additionally record their speedup
ratio.  Benchmarks may also record non-timing ratios (e.g. the sampled
protocol's message reduction) through the ``record_speedup`` fixture;
they land in the same ``speedups`` mapping the gate applies floors to.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

#: Benchmark groups serialized into the BENCH JSON.
BENCH_GROUPS = (
    "nash-core",
    "sim-fastpath",
    "engine-churn",
    "class-scale",
    "sampled-nash",
    "shm-plane",
)
#: Baseline/optimized name-suffix pairs recorded as speedups
#: (baseline suffix first; speedup = baseline mean / optimized mean).
SPEEDUP_SUFFIXES = (
    ("_legacy", "_vectorized"),
    ("_looped", "_batched"),
    ("_cold", "_warm"),
    ("_peruser", "_classspace"),
    ("_fullinfo", "_sampled"),
    ("_pickled", "_shmplane"),
)
#: Non-timing ratios recorded by benchmarks via the ``record_speedup``
#: fixture; merged into the serialized ``speedups`` mapping.
EXTRA_SPEEDUPS: dict[str, float] = {}
#: Default output path (repo root); override with the env var.
BENCH_ENV_VAR = "BENCH_NASH_JSON"
BENCH_DEFAULT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_nash.json"


def emit(table) -> None:
    """Print a reproduced artifact (visible with ``pytest -s``)."""
    print()
    print(table.to_ascii())


@pytest.fixture
def show():
    return emit


@pytest.fixture
def record_speedup():
    """Record a named non-timing ratio into the BENCH JSON speedups."""

    def record(key: str, value: float) -> None:
        EXTRA_SPEEDUPS[key] = float(value)

    return record


def _serialize(benchmarks) -> dict:
    """Build the BENCH JSON payload from pytest-benchmark metadata."""
    entries = []
    for bench in benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None or getattr(bench, "group", None) not in BENCH_GROUPS:
            continue
        entries.append(
            {
                "name": bench.name,
                "group": bench.group,
                "mean": float(stats.mean),
                "min": float(stats.min),
                "median": float(stats.median),
                "stddev": float(stats.stddev),
                "rounds": int(stats.rounds),
            }
        )
    entries.sort(key=lambda e: e["name"])
    means = {e["name"]: e["mean"] for e in entries}
    speedups = {}
    for name, mean in means.items():
        for slow_suffix, fast_suffix in SPEEDUP_SUFFIXES:
            if not name.endswith(slow_suffix):
                continue
            partner = name[: -len(slow_suffix)] + fast_suffix
            if partner in means and means[partner] > 0.0:
                key = name[: -len(slow_suffix)].rstrip("_")
                speedups[key] = mean / means[partner]
    speedups.update(EXTRA_SPEEDUPS)
    return {"schema": 1, "benchmarks": entries, "speedups": speedups}


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    payload = _serialize(bench_session.benchmarks)
    if not payload["benchmarks"]:
        return
    path = pathlib.Path(os.environ.get(BENCH_ENV_VAR, BENCH_DEFAULT))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {len(payload['benchmarks'])} gated timings to {path}")
