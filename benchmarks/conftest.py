"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper artifact (table/figure) end to end,
times the regeneration with pytest-benchmark, asserts the paper's
qualitative claims about it, and prints the reproduced rows (add ``-s``
to see them inline).
"""

from __future__ import annotations

import pytest


def emit(table) -> None:
    """Print a reproduced artifact (visible with ``pytest -s``)."""
    print()
    print(table.to_ascii())


@pytest.fixture
def show():
    return emit
