"""EXT6/ABL5 — deployment-grade runs, benchmarked."""

from __future__ import annotations

from repro.experiments import ext_deployment


def test_bench_measured_loop(benchmark, show):
    artifact = benchmark(
        lambda: ext_deployment.run_measured_loop(
            windows=(50.0, 200.0), cycles=5
        )
    )
    show(artifact)
    regrets = artifact.column("mean_tail_regret")
    # Longer measurement windows tighten the closed loop.
    assert regrets[-1] < regrets[0]
    for row in artifact.rows:
        assert row["relative_to_equilibrium_time"] < 0.2


def test_bench_fault_tolerance(benchmark, show):
    artifact = benchmark(ext_deployment.run_fault_tolerance)
    show(artifact)
    assert all(artifact.column("converged"))
    for row in artifact.rows:
        assert row["max_time_gap_vs_lossless"] < 1e-9
    overheads = artifact.column("message_overhead")
    assert overheads == sorted(overheads)


def test_bench_mechanism_frugality(benchmark, show):
    from repro.experiments import ext_mechanism

    artifact = benchmark(ext_mechanism.run_mechanism_frugality)
    show(artifact)
    ratios = artifact.column("overpayment_ratio")
    assert all(r >= 1.0 for r in ratios)
    assert ratios == sorted(ratios)  # truth gets pricier near monopoly
