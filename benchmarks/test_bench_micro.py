"""MICRO — microbenchmarks of the core algorithmic kernels.

Covers the complexity claims of the paper and this reproduction:

* OPTIMAL (best response) is O(n log n) — dominated by one sort even at
  thousands of computers;
* one NASH sweep costs m best responses;
* the full equilibrium computation on the paper's flagship configuration
  (16 computers, 10 users) is interactive (milliseconds);
* the vectorized Lindley kernel processes millions of jobs per second.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.best_response import optimal_fractions
from repro.core.nash import NashSolver
from repro.simengine.fastpath import mm1_lindley_waits
from repro.workloads import paper_table1_system


@pytest.mark.parametrize("n_computers", [16, 256, 4096])
def test_bench_optimal_scaling(benchmark, n_computers):
    rng = np.random.default_rng(0)
    available = rng.uniform(1.0, 100.0, size=n_computers)
    demand = 0.6 * available.sum()
    reply = benchmark(lambda: optimal_fractions(available, demand))
    assert reply.fractions.sum() == pytest.approx(1.0)


def test_bench_nash_equilibrium_table1(benchmark):
    system = paper_table1_system(utilization=0.6)
    solver = NashSolver(tolerance=1e-6)
    result = benchmark(lambda: solver.solve(system, "proportional"))
    assert result.converged


@pytest.mark.parametrize("n_users", [4, 16, 32])
def test_bench_nash_scaling_in_users(benchmark, n_users):
    system = paper_table1_system(utilization=0.6, n_users=n_users)
    solver = NashSolver(tolerance=1e-4)
    result = benchmark(lambda: solver.solve(system, "proportional"))
    assert result.converged


def test_bench_lindley_kernel(benchmark):
    rng = np.random.default_rng(1)
    n = 1_000_000
    gaps = rng.exponential(1.0, size=n)
    services = rng.exponential(0.6, size=n)
    waits = benchmark(lambda: mm1_lindley_waits(gaps, services))
    assert waits.size == n
    assert np.all(waits >= 0.0)


def test_bench_nash_large_scale(benchmark):
    """A cluster-scale instance: 256 computers, 64 users."""
    from repro.core.model import DistributedSystem

    rng = np.random.default_rng(7)
    mu = rng.uniform(10.0, 200.0, size=256)
    phi = np.full(64, 0.6 * mu.sum() / 64)
    system = DistributedSystem(service_rates=mu, arrival_rates=phi)
    solver = NashSolver(tolerance=1e-3, max_sweeps=2000)
    result = benchmark(lambda: solver.solve(system, "proportional"))
    assert result.converged


def test_bench_fastpath_million_jobs(benchmark):
    """End-to-end fast-path simulation pushing ~1.8M jobs."""
    from repro.core.strategy import StrategyProfile
    from repro.simengine.fastpath import simulate_profile_fast

    system = paper_table1_system(utilization=0.6)
    profile = StrategyProfile.proportional(system)
    result = benchmark(
        lambda: simulate_profile_fast(
            system, profile, horizon=6000.0, warmup=100.0, seed=1
        )
    )
    assert result.total_jobs > 1_500_000
