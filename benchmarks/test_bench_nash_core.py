"""NASH-CORE — the perf-regression benchmarks behind ``BENCH_nash.json``.

Every benchmark in this module is in group ``nash-core``; the session
plugin in ``conftest.py`` serializes their timings (plus the speedups of
the ``_legacy``/``_vectorized`` pairs) into ``BENCH_nash.json``, which CI
diffs against the committed baseline with ``benchmarks/bench_gate.py``.

The headline pair is the m=1000-user, n=64-computer NASH solve: the
``_legacy`` side runs the frozen O(m^2 n)-per-sweep driver from
:mod:`repro.core.reference`, the ``_vectorized`` side the production
solver (incremental load accounting + batched water-fill).  Both sides
run the *same fixed sweep budget* so the ratio measures per-sweep cost,
not convergence luck.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.best_response import optimal_fractions
from repro.core.model import DistributedSystem
from repro.core.nash import NashSolver
from repro.core.reference import reference_solve
from repro.core.waterfill import sqrt_waterfill_batch
from repro.simengine.fastpath import mm1_lindley_waits
from repro.workloads import paper_table1_system

#: Fixed sweep budgets for the legacy/vectorized pairs (neither order
#: converges on the large instance within these budgets, so both sides
#: always run the full budget).
ROUNDROBIN_SWEEPS = 3
SIMULTANEOUS_SWEEPS = 5

nash_core = pytest.mark.benchmark(group="nash-core")


def _large_system(m: int = 1000, n: int = 64) -> DistributedSystem:
    """A heterogeneous cluster-scale instance at 60% utilization."""
    rng = np.random.default_rng(7)
    mu = rng.uniform(10.0, 100.0, size=n)
    phi = rng.uniform(0.1, 1.0, size=m)
    phi *= 0.6 * mu.sum() / phi.sum()
    return DistributedSystem(service_rates=mu, arrival_rates=phi)


# ----------------------------------------------------------------------
# Single kernels
# ----------------------------------------------------------------------
@nash_core
def test_bench_nash_solver_table1(benchmark):
    """Full equilibrium solve on the paper's flagship configuration."""
    system = paper_table1_system(utilization=0.6)
    solver = NashSolver(tolerance=1e-6)
    result = benchmark(lambda: solver.solve(system, "proportional"))
    assert result.converged


@nash_core
def test_bench_optimal_kernel(benchmark):
    """One scalar OPTIMAL best response at n=64 computers."""
    rng = np.random.default_rng(0)
    available = rng.uniform(1.0, 100.0, size=64)
    demand = 0.6 * float(available.sum())
    reply = benchmark(lambda: optimal_fractions(available, demand))
    assert reply.fractions.sum() == pytest.approx(1.0)


@nash_core
def test_bench_waterfill_batch_m1000_n64(benchmark):
    """The batched water-fill kernel: 1000 users in one call."""
    rng = np.random.default_rng(3)
    a = rng.uniform(1.0, 100.0, size=(1000, 64))
    d = 0.3 * a.sum(axis=1)
    result = benchmark(lambda: sqrt_waterfill_batch(a, d))
    np.testing.assert_allclose(result.loads.sum(axis=1), d, rtol=1e-9)


@nash_core
def test_bench_lindley_fastpath(benchmark):
    """The vectorized Lindley recursion over one million jobs."""
    rng = np.random.default_rng(1)
    n = 1_000_000
    gaps = rng.exponential(1.0, size=n)
    services = rng.exponential(0.6, size=n)
    waits = benchmark(lambda: mm1_lindley_waits(gaps, services))
    assert waits.size == n


# ----------------------------------------------------------------------
# Legacy vs vectorized pairs (same fixed sweep budget on both sides)
# ----------------------------------------------------------------------
@nash_core
def test_bench_nash_m1000_n64_roundrobin_legacy(benchmark):
    system = _large_system()
    result = benchmark.pedantic(
        lambda: reference_solve(system, max_sweeps=ROUNDROBIN_SWEEPS),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == ROUNDROBIN_SWEEPS


@nash_core
def test_bench_nash_m1000_n64_roundrobin_vectorized(benchmark):
    system = _large_system()
    solver = NashSolver(max_sweeps=ROUNDROBIN_SWEEPS)
    result = benchmark.pedantic(
        lambda: solver.solve(system), rounds=3, iterations=1
    )
    assert result.iterations == ROUNDROBIN_SWEEPS


@nash_core
def test_bench_nash_m1000_n64_simultaneous_legacy(benchmark):
    system = _large_system()
    result = benchmark.pedantic(
        lambda: reference_solve(
            system, order="simultaneous", max_sweeps=SIMULTANEOUS_SWEEPS
        ),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == SIMULTANEOUS_SWEEPS


@nash_core
def test_bench_nash_m1000_n64_simultaneous_vectorized(benchmark):
    system = _large_system()
    solver = NashSolver(order="simultaneous", max_sweeps=SIMULTANEOUS_SWEEPS)
    result = benchmark.pedantic(
        lambda: solver.solve(system), rounds=3, iterations=1
    )
    assert result.iterations == SIMULTANEOUS_SWEEPS
