"""ABL1 — the distributed ring protocol vs the sequential driver."""

from __future__ import annotations

from repro.experiments import extensions


def test_bench_driver_ablation(benchmark, show):
    artifact = benchmark(extensions.run_driver_ablation)
    show(artifact)
    for row in artifact.rows:
        assert row["iterations_sequential"] == row["iterations_protocol"]
        assert row["max_profile_gap"] < 1e-9
        # Message complexity: one hop per user per sweep + termination.
        assert row["messages"] == 10 * row["iterations_protocol"] + 9
