"""EXT4/EXT5 — model extensions, benchmarked."""

from __future__ import annotations

import pytest

from repro.experiments import ext_models


def test_bench_comm_delay(benchmark, show):
    artifact = benchmark(ext_models.run_comm_delay)
    show(artifact)
    costs = artifact.column("nash_cost")
    shares = artifact.column("fast_computer_share")
    assert costs == sorted(costs)  # delays only hurt
    assert shares[-1] < shares[0]  # traffic retreats toward local machines
    # At zero delay the plain game's ordering holds.
    assert artifact.rows[0]["nash_cost"] < artifact.rows[0]["ps_cost"]


def test_bench_misspecification(benchmark, show):
    artifact = benchmark(ext_models.run_misspecification)
    show(artifact)
    for row in artifact.rows:
        # Reality follows Pollaczek-Khinchine, not the M/M/1 model ...
        assert row["nash_simulated"] == pytest.approx(
            row["nash_pk_predicted"], rel=0.1
        )
        # ... but the paper's scheme ordering survives misspecification.
        assert row["nash_simulated"] < row["ps_simulated"]


def test_bench_bursty_arrivals(benchmark, show):
    artifact = benchmark(ext_models.run_bursty_arrivals)
    show(artifact)
    rows = artifact.rows
    # Poisson endpoint: the model is calibrated and NASH wins.
    assert rows[0]["nash_simulated"] < rows[0]["ps_simulated"]
    # High burstiness: the ordering reverses (see module docstring).
    assert rows[-1]["nash_simulated"] > rows[-1]["ps_simulated"]
