"""F4 — regenerate Figure 4 (response time and fairness vs utilization).

Paper claims reproduced here (Sec. 4.2.2):
* low load: NASH ~ GOS ~ IOS, PS worst;
* 50% load: NASH within ~10% of GOS and ~30% better than PS;
* high load: IOS == PS exactly, both above GOS ~ NASH;
* fairness: PS = IOS = 1 at all loads, NASH ~ 1, GOS degrades with load.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig4_utilization


def test_bench_fig4_utilization_sweep(benchmark, show):
    artifact = benchmark(fig4_utilization.run)
    show(artifact)
    rows = {round(r["utilization"], 2): r for r in artifact.rows}

    # Low load: the three informed schemes nearly coincide; PS lags.
    low = rows[0.2]
    trio = [low["ert_nash"], low["ert_gos"], low["ert_ios"]]
    assert (max(trio) - min(trio)) / min(trio) < 0.15
    assert low["ert_ps"] > 1.2 * max(trio)

    # Medium load: paper's headline comparison at 50%.
    mid = rows[0.5]
    assert (mid["ert_nash"] - mid["ert_gos"]) / mid["ert_gos"] < 0.15
    assert (mid["ert_ps"] - mid["ert_nash"]) / mid["ert_ps"] > 0.2

    # High load: IOS == PS exactly once every computer is used.
    high = rows[0.9]
    assert high["ert_ios"] == pytest.approx(high["ert_ps"], rel=1e-9)
    assert high["ert_gos"] <= high["ert_nash"] <= high["ert_ios"] + 1e-12

    # Fairness panel.
    for row in artifact.rows:
        assert row["fairness_ps"] == pytest.approx(1.0)
        assert row["fairness_ios"] == pytest.approx(1.0)
        assert row["fairness_nash"] > 0.999
    assert rows[0.9]["fairness_gos"] < rows[0.1]["fairness_gos"]
