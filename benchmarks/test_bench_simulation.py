"""SIM — the paper's simulation methodology, benchmarked and validated.

Times the replicated event-driven measurement of the NASH allocation and
asserts the paper's acceptance criterion (standard error < 5%), plus the
agreement between simulation and the analytic M/M/1 model.  Also contrasts
the two engines (event-driven vs vectorized Lindley fast path) at matched
workloads.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import sim_validation
from repro.schemes import NashScheme
from repro.simengine import simulate_profile, simulate_profile_fast
from repro.workloads import paper_table1_system


def test_bench_sim_validation(benchmark, show):
    artifact = benchmark(
        lambda: sim_validation.run(horizon=1500.0, warmup=150.0)
    )
    show(artifact)
    for row in artifact.rows:
        assert row["rel_error"] < 0.05


def test_bench_event_engine_throughput(benchmark):
    system = paper_table1_system(utilization=0.6)
    allocation = NashScheme().allocate(system)

    result = benchmark(
        lambda: simulate_profile(
            system, allocation.profile, horizon=50.0, warmup=5.0, seed=1
        )
    )
    assert result.total_jobs > 5_000


def test_bench_fast_engine_throughput(benchmark):
    system = paper_table1_system(utilization=0.6)
    allocation = NashScheme().allocate(system)

    result = benchmark(
        lambda: simulate_profile_fast(
            system, allocation.profile, horizon=2000.0, warmup=200.0, seed=1
        )
    )
    # The Lindley fast path pushes ~40x more jobs than the event engine
    # in comparable wall time (see relative benchmark numbers).
    assert result.total_jobs > 400_000


def test_bench_engines_agree(benchmark):
    system = paper_table1_system(utilization=0.6)
    allocation = NashScheme().allocate(system)
    analytic = allocation.user_times

    def run_both():
        fast = simulate_profile_fast(
            system, allocation.profile, horizon=1500.0, warmup=150.0, seed=3
        )
        slow = simulate_profile(
            system, allocation.profile, horizon=300.0, warmup=30.0, seed=3
        )
        return fast, slow

    fast, slow = benchmark(run_both)
    np.testing.assert_allclose(
        fast.user_mean_response_times, analytic, rtol=0.1
    )
    np.testing.assert_allclose(
        slow.user_mean_response_times, analytic, rtol=0.1
    )
