"""F6 — regenerate Figure 6 (effect of heterogeneity / speed skewness).

Paper claims reproduced here (Sec. 4.2.3):
* at skewness 1 (homogeneous) all schemes coincide;
* with growing skewness NASH tracks GOS almost exactly;
* IOS performs poorly at low-to-mid skewness (= PS) but approaches
  NASH/GOS at high skewness;
* PS stays poor throughout.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig6_heterogeneity


def test_bench_fig6_skewness_sweep(benchmark, show):
    artifact = benchmark(fig6_heterogeneity.run)
    show(artifact)
    first = artifact.rows[0]
    trio = [first["ert_nash"], first["ert_gos"], first["ert_ios"], first["ert_ps"]]
    np.testing.assert_allclose(trio, trio[0], rtol=1e-6)

    last = artifact.rows[-1]
    assert last["ert_nash"] <= 1.05 * last["ert_gos"]
    assert last["ert_ios"] <= 1.05 * last["ert_gos"]
    assert last["ert_ps"] > 1.5 * last["ert_nash"]

    # IOS == PS while all computers are used (low/mid skewness).
    mid = artifact.rows[2]
    assert abs(mid["ert_ios"] - mid["ert_ps"]) < 1e-9
