"""F3 — regenerate Figure 3 (iterations to equilibrium vs #users).

Paper claims reproduced here:
* NASH_P needs fewer best-reply sweeps than NASH_0 at every user count
  from 4 to 32;
* the iteration count grows with the number of users.
"""

from __future__ import annotations

from repro.experiments import fig3_users


def test_bench_fig3_user_scaling(benchmark, show):
    artifact = benchmark(fig3_users.run)
    show(artifact)
    zero = artifact.column("iterations_nash_0")
    prop = artifact.column("iterations_nash_p")
    assert all(p <= z for p, z in zip(prop, zero))
    assert zero == sorted(zero)
    assert prop == sorted(prop)
    # Savings are material (paper: "reduced ... in all the cases").
    assert all(s > 0.0 for s in artifact.column("saving"))
