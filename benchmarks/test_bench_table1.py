"""T1 — regenerate the paper's Table 1 (system configuration)."""

from __future__ import annotations

from repro.experiments import table1


def test_bench_table1(benchmark, show):
    artifact = benchmark(table1.run)
    show(artifact)
    assert artifact.column("number_of_computers") == [6, 5, 3, 2]
    assert sum(
        rel * count * 10.0
        for rel, count in zip(
            artifact.column("relative_processing_rate"),
            artifact.column("number_of_computers"),
        )
    ) == 510.0
